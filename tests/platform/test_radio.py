"""Tests for the radio model."""

import numpy as np
import pytest

from repro.core.defuzz import UNKNOWN_LABEL
from repro.platform.radio import (
    FULL_FIDUCIAL_PAYLOAD,
    PEAK_ONLY_PAYLOAD,
    RadioModel,
    TransmissionPolicy,
)


class TestTransmissionPolicy:
    def test_baseline_sends_full_for_all(self):
        flagged = np.array([True, False, False])
        policy = TransmissionPolicy(gated=False)
        assert policy.bytes_for_beats(flagged, overhead_bytes=2) == 3 * (
            FULL_FIDUCIAL_PAYLOAD + 2
        )

    def test_gated_mixes_formats(self):
        flagged = np.array([True, False, False, False])
        policy = TransmissionPolicy(gated=True)
        expected = 1 * (FULL_FIDUCIAL_PAYLOAD + 2) + 3 * (PEAK_ONLY_PAYLOAD + 2)
        assert policy.bytes_for_beats(flagged, overhead_bytes=2) == expected

    def test_all_abnormal_equals_baseline(self):
        flagged = np.ones(10, dtype=bool)
        gated = TransmissionPolicy(True).bytes_for_beats(flagged)
        baseline = TransmissionPolicy(False).bytes_for_beats(flagged)
        assert gated == baseline


class TestRadioModel:
    def test_bytes_for_stream(self):
        radio = RadioModel(overhead_bytes=2)
        labels = np.array([0, 0, 1, UNKNOWN_LABEL])  # 2 normal, 2 flagged
        expected = 2 * (PEAK_ONLY_PAYLOAD + 2) + 2 * (FULL_FIDUCIAL_PAYLOAD + 2)
        assert radio.bytes_for_stream(labels) == expected

    def test_energy_proportional_to_bytes(self):
        radio = RadioModel(energy_per_byte_j=1e-6, overhead_bytes=0)
        labels = np.zeros(10, dtype=np.int64)
        assert radio.energy_for_stream(labels) == pytest.approx(
            10 * PEAK_ONLY_PAYLOAD * 1e-6
        )

    def test_saving_increases_with_discard_rate(self):
        radio = RadioModel()
        mostly_normal = np.zeros(100, dtype=np.int64)
        mostly_abnormal = np.ones(100, dtype=np.int64)
        assert radio.saving(mostly_normal) > radio.saving(mostly_abnormal)

    def test_saving_zero_when_everything_flagged(self):
        radio = RadioModel()
        assert radio.saving(np.ones(10, dtype=np.int64)) == pytest.approx(0.0)

    def test_paper_regime(self):
        """~78% discarded at the paper's packet sizes -> ~60-70% saving."""
        radio = RadioModel(overhead_bytes=2)
        labels = np.zeros(1000, dtype=np.int64)
        labels[:225] = 1  # ~22.5% activation (the measured rate)
        saving = radio.saving(labels)
        assert 0.55 < saving < 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioModel(energy_per_byte_j=0.0)
        with pytest.raises(ValueError):
            RadioModel(overhead_bytes=-1)
