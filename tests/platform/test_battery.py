"""Tests for the battery-life model."""

import pytest

from repro.platform.battery import CR2032_ENERGY_J, BatteryModel
from repro.platform.icyheart import IcyHeartConfig


class TestBatteryModel:
    def test_lifetime_arithmetic(self):
        model = BatteryModel(capacity_j=86_400.0)  # 1 J/s for a day
        assert model.lifetime_days(1.0) == pytest.approx(1.0)

    def test_baseline_power_from_share(self):
        model = BatteryModel()
        # compute+radio = 34 uW -> total = 100 uW at the 34% share.
        total = model.baseline_power_w(20e-6, 14e-6)
        assert total == pytest.approx(100e-6, rel=1e-6)

    def test_compare_matches_paper_arithmetic(self):
        """63% compute + 68% radio saving -> ~23% total, shares 10/24."""
        model = BatteryModel()
        config = IcyHeartConfig()
        baseline_compute = config.compute_energy_share * 100e-6
        baseline_radio = config.radio_energy_share * 100e-6
        result = model.compare(
            baseline_compute,
            baseline_radio,
            gated_compute_w=baseline_compute * (1 - 0.63),
            gated_radio_w=baseline_radio * (1 - 0.68),
        )
        assert result["total_saving"] == pytest.approx(0.226, abs=0.005)
        assert result["extension_factor"] == pytest.approx(1 / (1 - 0.226), rel=1e-3)

    def test_gated_always_lives_longer_when_cheaper(self):
        model = BatteryModel()
        result = model.compare(10e-6, 24e-6, 5e-6, 10e-6)
        assert result["gated_days"] > result["baseline_days"]
        assert result["extension_factor"] > 1.0

    def test_cr2032_scale_sanity(self):
        """A 100 uW node on a CR2032 runs most of a year."""
        model = BatteryModel(capacity_j=CR2032_ENERGY_J)
        days = model.lifetime_days(100e-6)
        assert 200 < days < 400

    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryModel(capacity_j=0.0)
        model = BatteryModel()
        with pytest.raises(ValueError):
            model.lifetime_days(0.0)
        with pytest.raises(ValueError):
            model.baseline_power_w(0.0, 0.0)
