"""Tests for the code-size and data-memory models."""

import pytest

from repro.platform.icyheart import IcyHeartConfig
from repro.platform.memory import (
    CodeSizeModel,
    data_memory_report,
    fits_in_ram,
)


class TestCodeSizeModel:
    def test_table3_values(self):
        """The calibrated model reproduces the paper's Table III sizes."""
        column = CodeSizeModel().table3_column()
        assert column["rp_classifier"] == pytest.approx(1.64, abs=0.03)
        assert column["subsystem1"] == pytest.approx(30.29, abs=0.3)
        assert column["delineation"] == pytest.approx(46.39, abs=0.3)
        assert column["proposed_system"] == pytest.approx(76.68, abs=0.5)

    def test_additivity(self):
        """Table III: (3) = (1) + (2), exactly as in the paper."""
        model = CodeSizeModel()
        assert model.proposed_system_bytes() == (
            model.subsystem1_bytes() + model.delineation_bytes()
        )

    def test_classifier_is_tiny(self):
        model = CodeSizeModel()
        assert model.rp_classifier_bytes() < 0.1 * model.subsystem1_bytes()

    def test_unknown_routine(self):
        with pytest.raises(KeyError):
            CodeSizeModel().routine_bytes("fft")

    def test_custom_routines(self):
        model = CodeSizeModel(routine_instructions={"rp_classifier": 100}, bytes_per_instruction=2)
        assert model.routine_bytes("rp_classifier") == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            CodeSizeModel(bytes_per_instruction=0)
        with pytest.raises(ValueError):
            CodeSizeModel(routine_instructions={"rp_classifier": -1})


class TestDataMemory:
    def test_report_structure(self, embedded_classifier):
        report = data_memory_report(embedded_classifier, fs=360.0)
        assert report["total"] == (
            report["classifier_tables"]
            + report["lead_buffers"]
            + report["wavelet_buffers"]
        )

    def test_fits_96kb_ram(self, embedded_classifier):
        """The deployed system must fit the IcyHeart RAM."""
        config = IcyHeartConfig()
        report = data_memory_report(embedded_classifier, fs=config.sampling_rate_hz)
        assert fits_in_ram(report, config.ram_bytes)
        # With very wide margin: the paper reports "a small fraction".
        assert report["total"] < 0.25 * config.ram_bytes

    def test_buffers_scale_with_leads(self, embedded_classifier):
        one = data_memory_report(embedded_classifier, fs=360.0, n_leads=1)
        three = data_memory_report(embedded_classifier, fs=360.0, n_leads=3)
        assert three["lead_buffers"] == 3 * one["lead_buffers"]

    def test_validation(self, embedded_classifier):
        with pytest.raises(ValueError):
            data_memory_report(embedded_classifier, fs=0.0)
