"""Tests for the cycle model."""

import pytest

from repro.platform.cpu import CycleModel, ICYFLEX_CYCLES
from repro.platform.opcount import OpCounter


class TestCycleModel:
    def test_cycles_arithmetic(self):
        model = CycleModel({"add": 1.0, "mul": 2.0}, overhead_factor=1.0)
        counter = OpCounter({"add": 10, "mul": 5})
        assert model.cycles(counter) == 20.0

    def test_unknown_ops_cost_one(self):
        model = CycleModel({}, overhead_factor=1.0)
        assert model.cycles(OpCounter({"abs": 7})) == 7.0

    def test_overhead_factor(self):
        model = CycleModel({"add": 1.0}, overhead_factor=2.0)
        assert model.cycles(OpCounter({"add": 10})) == 20.0

    def test_duty_cycle(self):
        model = CycleModel({"add": 1.0}, overhead_factor=1.0)
        counter = OpCounter({"add": 600_000})
        assert model.duty_cycle(counter, 6_000_000.0) == pytest.approx(0.1)

    def test_runtime(self):
        model = CycleModel({"add": 1.0}, overhead_factor=1.0)
        assert model.runtime_seconds(OpCounter({"add": 6000}), 6000.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CycleModel({"nop": 1.0})
        with pytest.raises(ValueError):
            CycleModel({"add": 0.0})
        with pytest.raises(ValueError):
            CycleModel({"add": 1.0}, overhead_factor=0.5)
        with pytest.raises(ValueError):
            CycleModel({}).duty_cycle(OpCounter(), 0.0)

    def test_default_table_covers_all_kinds(self):
        from repro.platform.opcount import OP_KINDS

        for op in OP_KINDS:
            assert op in ICYFLEX_CYCLES.cycles_per_op


class TestRelativeConclusionsRobust:
    """The Table III orderings must not depend on exact cycle costs."""

    def _profiles(self):
        classifier = OpCounter({"add": 300, "mul": 50, "cmp": 200, "load": 400})
        filtering = OpCounter(
            {"cmp": 150_000, "load": 300_000, "store": 5_000, "sub": 2_000}
        )
        delineation = OpCounter(
            {"cmp": 500_000, "load": 900_000, "add": 10_000, "store": 20_000}
        )
        return classifier, filtering, delineation

    @pytest.mark.parametrize("mul_cost", [1.0, 2.0, 4.0])
    @pytest.mark.parametrize("mem_cost", [1.0, 2.0, 3.0])
    def test_ordering_invariant(self, mul_cost, mem_cost):
        model = CycleModel(
            {
                "add": 1.0,
                "sub": 1.0,
                "cmp": 1.0,
                "shift": 1.0,
                "and": 1.0,
                "abs": 1.0,
                "mul": mul_cost,
                "div": 18.0,
                "load": mem_cost,
                "store": mem_cost,
            },
            overhead_factor=1.5,
        )
        classifier, filtering, delineation = self._profiles()
        c = model.cycles(classifier)
        f = model.cycles(filtering)
        d = model.cycles(delineation)
        assert c < f < d
