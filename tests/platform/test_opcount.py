"""Tests for operation counters."""

import pytest

from repro.platform.opcount import OpCounter


class TestOpCounter:
    def test_add_and_lookup(self):
        counter = OpCounter()
        counter.add("mul", 10)
        counter.add("mul", 5)
        assert counter["mul"] == 15
        assert counter["add"] == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            OpCounter().add("fma", 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCounter().add("add", -1)

    def test_add_counts(self):
        counter = OpCounter()
        counter.add_counts({"add": 3, "mul": 2})
        assert counter.total == 5

    def test_merge_does_not_mutate(self):
        a = OpCounter({"add": 1})
        b = OpCounter({"add": 2, "mul": 3})
        merged = a.merge(b)
        assert merged["add"] == 3 and merged["mul"] == 3
        assert a["add"] == 1 and a["mul"] == 0

    def test_scaled(self):
        counter = OpCounter({"add": 10, "mul": 4})
        half = counter.scaled(0.5)
        assert half["add"] == 5 and half["mul"] == 2

    def test_scaled_rounds(self):
        counter = OpCounter({"add": 3})
        assert counter.scaled(0.5)["add"] == 2  # rint(1.5) -> 2 (banker's)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCounter({"add": 1}).scaled(-1.0)

    def test_bool(self):
        assert not OpCounter()
        assert OpCounter({"add": 1})
