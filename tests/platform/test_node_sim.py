"""Tests for the event-driven node simulator."""

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.platform.icyheart import IcyHeartConfig
from repro.platform.node_sim import BeatEvent, NodeSimulator, NodeTrace
from repro.platform.radio import FULL_FIDUCIAL_PAYLOAD, PEAK_ONLY_PAYLOAD


@pytest.fixture(scope="module")
def record():
    synth = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=55)
    return synth.synthesize(60.0, name="node-sim")


@pytest.fixture(scope="module")
def trace(record, embedded_classifier):
    return NodeSimulator(embedded_classifier).process_record(record)


class TestBeatEvent:
    def test_slack_and_deadline(self):
        event = BeatEvent(
            peak=0, label=0, flagged=False,
            frontend_cycles=100.0, classify_cycles=50.0, delineate_cycles=0.0,
            tx_bytes=5, budget_cycles=200.0,
        )
        assert event.total_cycles == 150.0
        assert event.slack_cycles == 50.0
        assert event.meets_deadline

    def test_missed_deadline(self):
        event = BeatEvent(
            peak=0, label=1, flagged=True,
            frontend_cycles=100.0, classify_cycles=50.0, delineate_cycles=100.0,
            tx_bytes=22, budget_cycles=200.0,
        )
        assert not event.meets_deadline


class TestTrace:
    def test_one_event_per_detected_beat(self, trace, record):
        # Detection is near-perfect on this record.
        assert abs(len(trace) - len(record.annotation)) <= 4

    def test_real_time_feasibility(self, trace):
        """The paper's system must keep up at 6 MHz — every beat."""
        assert trace.deadline_misses == 0
        assert trace.worst_case_utilization < 1.0

    def test_duty_cycle_in_table3_regime(self, trace):
        """The simulated duty must land near the profile-based value."""
        assert 0.05 < trace.duty_cycle < 0.40

    def test_flagged_beats_cost_more(self, trace):
        flagged = [e.total_cycles for e in trace.events if e.flagged]
        discarded = [e.total_cycles for e in trace.events if not e.flagged]
        assert flagged and discarded
        assert np.median(flagged) > 2 * np.median(discarded)

    def test_tx_bytes_by_verdict(self, trace):
        for event in trace.events:
            expected = FULL_FIDUCIAL_PAYLOAD if event.flagged else PEAK_ONLY_PAYLOAD
            assert event.tx_bytes == expected + 2  # default overhead

    def test_activation_rate_consistent(self, trace):
        assert trace.activation_rate == pytest.approx(
            trace.n_flagged / len(trace), abs=1e-12
        )

    def test_summary(self, trace):
        text = trace.summary()
        assert "duty=" in text and "deadline misses" in text

    def test_empty_trace(self):
        trace = NodeTrace([], 10.0, 6e6)
        assert trace.duty_cycle == 0.0
        assert trace.worst_case_utilization == 0.0
        assert trace.activation_rate == 0.0

    def test_worst_case_with_only_budgetless_events(self):
        """Regression: events whose budgets are all <= 0 must yield 0.0,
        not raise ValueError from an empty max()."""
        event = BeatEvent(
            peak=0, label=0, flagged=False,
            frontend_cycles=100.0, classify_cycles=50.0, delineate_cycles=0.0,
            tx_bytes=5, budget_cycles=0.0,
        )
        trace = NodeTrace([event], 10.0, 6e6)
        assert trace.worst_case_utilization == 0.0
        # A mix keeps reporting the worst budgeted beat.
        budgeted = BeatEvent(
            peak=1, label=0, flagged=False,
            frontend_cycles=100.0, classify_cycles=50.0, delineate_cycles=0.0,
            tx_bytes=5, budget_cycles=300.0,
        )
        trace = NodeTrace([event, budgeted], 10.0, 6e6)
        assert trace.worst_case_utilization == pytest.approx(0.5)


class TestSimulatorConfig:
    def test_invalid_decimation(self, embedded_classifier):
        with pytest.raises(ValueError):
            NodeSimulator(embedded_classifier, decimation=0)

    def test_flat_record_yields_empty_trace(self, embedded_classifier):
        from repro.ecg.database import Record

        record = Record("flat", np.zeros((3600, 3)), fs=360.0)
        trace = NodeSimulator(embedded_classifier).process_record(record)
        assert len(trace) == 0

    def test_classifier_cycles_tiny_vs_budget(self, trace, embedded_classifier):
        """Table III row 1: classification is negligible per beat."""
        platform = IcyHeartConfig()
        for event in trace.events[:20]:
            assert event.classify_cycles < 0.01 * event.budget_cycles
