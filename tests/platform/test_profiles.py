"""Tests for the measured per-stage operation profiles."""

import pytest

from repro.platform.cpu import ICYFLEX_CYCLES
from repro.platform.icyheart import IcyHeartConfig
from repro.platform.profiles import (
    classifier_beat_profile,
    delineation_beat_profile,
    delineator_system_profile,
    filtering_profile,
    peak_detection_profile,
    proposed_system_profile,
    subsystem1_profile,
    window_filtering_beat_profile,
)


@pytest.fixture(scope="module")
def fs():
    return 360.0


class TestStageProfiles:
    def test_filtering_profile_positive(self, fs):
        profile = filtering_profile(fs)
        assert profile["cmp"] > 0
        assert profile["load"] > 0

    def test_filtering_dominated_by_comparisons(self, fs):
        """Morphology is compare/load-heavy, multiplication-free."""
        profile = filtering_profile(fs)
        assert profile["mul"] == 0
        assert profile["cmp"] > 100 * 360  # hundreds of cmps per sample

    def test_peak_detection_uses_multiplies(self, fs):
        profile = peak_detection_profile(fs)
        assert profile["mul"] > 0

    def test_classifier_beat_profile(self, embedded_classifier):
        profile = classifier_beat_profile(embedded_classifier)
        assert profile.total > 0
        assert profile.total < 50_000  # a few thousand ops per beat

    def test_delineation_beat_profile(self, fs):
        profile = delineation_beat_profile(fs)
        assert profile["cmp"] > 10_000  # MMD over 3 leads is heavy

    def test_window_filtering_scales_with_leads(self, fs):
        one = window_filtering_beat_profile(fs, n_leads=1)
        two = window_filtering_beat_profile(fs, n_leads=2)
        assert two.total == pytest.approx(2 * one.total, rel=0.01)


class TestSystemOrdering:
    """The qualitative Table III conclusions, from measured profiles."""

    def test_classifier_negligible_vs_subsystem1(self, embedded_classifier, fs):
        config = IcyHeartConfig()
        classifier = classifier_beat_profile(embedded_classifier).scaled(1.28)
        sub1 = subsystem1_profile(embedded_classifier, fs)
        duty_classifier = ICYFLEX_CYCLES.duty_cycle(classifier, config.clock_hz)
        duty_sub1 = ICYFLEX_CYCLES.duty_cycle(sub1, config.clock_hz)
        assert duty_classifier < 0.01  # paper: "< 0.01"
        assert duty_classifier < 0.1 * duty_sub1

    def test_delineator_heavier_than_subsystem1(self, embedded_classifier, fs):
        config = IcyHeartConfig()
        sub1 = subsystem1_profile(embedded_classifier, fs)
        sub2 = delineator_system_profile(fs)
        assert ICYFLEX_CYCLES.duty_cycle(sub2, config.clock_hz) > 2 * ICYFLEX_CYCLES.duty_cycle(
            sub1, config.clock_hz
        )

    def test_gated_system_cheaper_than_always_on(self, embedded_classifier, fs):
        """The headline: gating saves more than half the delineator duty."""
        config = IcyHeartConfig()
        gated = proposed_system_profile(embedded_classifier, 0.22, fs)
        always_on = delineator_system_profile(fs)
        duty_gated = ICYFLEX_CYCLES.duty_cycle(gated, config.clock_hz)
        duty_always = ICYFLEX_CYCLES.duty_cycle(always_on, config.clock_hz)
        saving = 1.0 - duty_gated / duty_always
        assert saving > 0.4

    def test_gated_duty_grows_with_activation(self, embedded_classifier, fs):
        low = proposed_system_profile(embedded_classifier, 0.1, fs)
        high = proposed_system_profile(embedded_classifier, 0.9, fs)
        assert high.total > low.total

    def test_activation_rate_validated(self, embedded_classifier, fs):
        with pytest.raises(ValueError):
            proposed_system_profile(embedded_classifier, 1.5, fs)
