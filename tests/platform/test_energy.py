"""Tests for the system energy model."""

import numpy as np
import pytest

from repro.platform.energy import SystemEnergyModel
from repro.platform.icyheart import IcyHeartConfig
from repro.platform.opcount import OpCounter
from repro.platform.radio import RadioModel


@pytest.fixture()
def model():
    return SystemEnergyModel(IcyHeartConfig(), RadioModel())


class TestBreakdown:
    def test_total_is_sum(self, model):
        profile = OpCounter({"add": 600_000})
        labels = np.zeros(100, dtype=np.int64)
        breakdown = model.breakdown(profile, labels, duration_s=60.0, gated=True)
        assert breakdown.total_j == pytest.approx(
            breakdown.compute_j + breakdown.radio_j
        )
        assert breakdown.duration_s == 60.0

    def test_compute_energy_scales_with_duty(self, model):
        labels = np.zeros(10, dtype=np.int64)
        light = model.breakdown(OpCounter({"add": 1000}), labels, 10.0, True)
        heavy = model.breakdown(OpCounter({"add": 1_000_000}), labels, 10.0, True)
        assert heavy.compute_j == pytest.approx(1000 * light.compute_j, rel=1e-6)

    def test_gated_radio_cheaper(self, model):
        labels = np.zeros(100, dtype=np.int64)  # all discarded
        gated = model.breakdown(OpCounter({"add": 1}), labels, 10.0, gated=True)
        full = model.breakdown(OpCounter({"add": 1}), labels, 10.0, gated=False)
        assert gated.radio_j < full.radio_j

    def test_duration_validated(self, model):
        with pytest.raises(ValueError):
            model.breakdown(OpCounter(), np.zeros(1, dtype=np.int64), 0.0, True)


class TestSavings:
    def test_savings_fields(self, model):
        labels = np.zeros(1000, dtype=np.int64)
        labels[:220] = 1
        savings = model.savings(
            OpCounter({"add": 200_000}),
            OpCounter({"add": 800_000}),
            labels,
            duration_s=100.0,
        )
        assert savings["compute_saving"] == pytest.approx(0.75)
        assert 0.0 < savings["radio_saving"] < 1.0
        assert savings["total_saving"] == pytest.approx(
            0.75 * model.config.compute_energy_share
            + savings["radio_saving"] * model.config.radio_energy_share
        )

    def test_total_bounded_by_combined_share(self, model):
        labels = np.zeros(100, dtype=np.int64)
        savings = model.savings(
            OpCounter({"add": 1}), OpCounter({"add": 100}), labels, 10.0
        )
        assert savings["total_saving"] <= model.config.combined_energy_share + 1e-12


class TestIcyHeartConfig:
    def test_paper_constants(self):
        config = IcyHeartConfig()
        assert config.clock_hz == 6_000_000.0
        assert config.ram_bytes == 96 * 1024
        assert config.combined_energy_share == pytest.approx(0.34)

    def test_validation(self):
        with pytest.raises(ValueError):
            IcyHeartConfig(clock_hz=0.0)
        with pytest.raises(ValueError):
            IcyHeartConfig(compute_energy_share=0.9, radio_energy_share=0.2)
