"""Integration: the streaming front end feeding the embedded classifier.

The firmware path: ADC blocks -> BlockFilter -> StreamingPeakDetector
-> segmentation -> decimation -> integer classification.  These tests
check that the bounded-memory schedule reaches the same clinical
decisions as the whole-record batch path.
"""

import numpy as np
import pytest

from repro.core.defuzz import is_abnormal
from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import detect_peaks
from repro.dsp.streaming import BlockFilter, StreamingPeakDetector
from repro.ecg.resample import decimate_beats
from repro.ecg.segmentation import BeatWindow, segment_beats
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig


@pytest.fixture(scope="module")
def record():
    synth = RecordSynthesizer(SynthesisConfig(n_leads=1), seed=202)
    return synth.synthesize(90.0, name="streaming-system")


@pytest.fixture(scope="module")
def streaming_outputs(record, embedded_classifier):
    """Run the full streaming chain in 0.5-second ADC blocks."""
    x = record.lead(0)
    fs = record.fs
    block = int(0.5 * fs)
    block_filter = BlockFilter(fs)
    detector = StreamingPeakDetector(fs)
    filtered_parts = []
    for i in range(0, x.size, block):
        out = block_filter.push(x[i : i + block])
        if out.size:
            filtered_parts.append(out)
            detector.push(out)
    tail = block_filter.flush()
    if tail.size:
        filtered_parts.append(tail)
        detector.push(tail)
    detector.flush()
    filtered = np.concatenate(filtered_parts)
    peaks = detector.peaks
    window = BeatWindow(100, 100)
    beats, kept = segment_beats(filtered, peaks, window)
    beats_ds, _ = decimate_beats(beats, window, 4)
    labels = embedded_classifier.predict(beats_ds)
    return filtered, peaks[kept], labels


class TestStreamingSystem:
    def test_stream_covers_the_record(self, streaming_outputs, record):
        filtered, _, _ = streaming_outputs
        assert filtered.size == record.n_samples

    def test_detection_matches_batch(self, streaming_outputs, record):
        _, peaks, _ = streaming_outputs
        batch_filtered = filter_lead(record.lead(0), record.fs)
        batch_peaks = detect_peaks(batch_filtered, record.fs)
        missed = sum(1 for p in batch_peaks if np.min(np.abs(peaks - p)) > 15)
        assert missed <= max(1, int(0.06 * batch_peaks.size))

    def test_decisions_match_batch_chain(self, streaming_outputs, record, embedded_classifier):
        """Same beats, same verdicts: the streaming schedule is
        decision-equivalent to the batch path."""
        filtered_s, peaks_s, labels_s = streaming_outputs
        batch_filtered = filter_lead(record.lead(0), record.fs)
        batch_peaks = detect_peaks(batch_filtered, record.fs)
        window = BeatWindow(100, 100)
        beats, kept = segment_beats(batch_filtered, batch_peaks, window)
        beats_ds, _ = decimate_beats(beats, window, 4)
        labels_b = embedded_classifier.predict(beats_ds)
        kept_batch = batch_peaks[kept]

        # Match streamed beats to batch beats and compare verdicts.
        agreements = 0
        matched = 0
        for peak_s, label_s in zip(peaks_s, labels_s):
            j = int(np.argmin(np.abs(kept_batch - peak_s)))
            if abs(int(kept_batch[j]) - int(peak_s)) <= 3:
                matched += 1
                agreements += int(
                    bool(is_abnormal(np.array([label_s]))[0])
                    == bool(is_abnormal(np.array([labels_b[j]]))[0])
                )
        assert matched > 0.9 * len(labels_s)
        assert agreements / matched > 0.95

    def test_recognition_through_streaming_chain(self, streaming_outputs, record):
        from repro.ecg.segmentation import match_peaks_to_annotation

        _, peaks, labels = streaming_outputs
        true_labels, matched = match_peaks_to_annotation(
            peaks, record.annotation, tolerance=18
        )
        y = true_labels[matched]
        predicted = labels[matched]
        abnormal = y != 0
        if abnormal.sum() >= 5:
            assert np.mean(is_abnormal(predicted)[abnormal]) > 0.7
