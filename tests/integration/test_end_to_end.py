"""Integration tests: the full Figure 6 system on synthetic records.

These exercise the complete embedded chain on record-level data:
synthesis -> morphological filtering -> wavelet peak detection ->
segmentation -> downsampling -> integer RP classification -> gated
multi-lead delineation.
"""

import numpy as np
import pytest

from repro.core.defuzz import is_abnormal
from repro.dsp.delineation import delineate_multilead
from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import detect_peaks
from repro.ecg.resample import decimate_beats
from repro.ecg.segmentation import BeatWindow, match_peaks_to_annotation, segment_beats
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig


@pytest.fixture(scope="module")
def record():
    synth = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=99)
    return synth.synthesize(120.0, name="e2e")


@pytest.fixture(scope="module")
def filtered(record):
    return np.column_stack(
        [filter_lead(record.signal[:, i], record.fs) for i in range(3)]
    )


@pytest.fixture(scope="module")
def chain_outputs(record, filtered, embedded_classifier):
    """Run the full chain once; several tests inspect the outputs."""
    fs = record.fs
    peaks = detect_peaks(filtered[:, 0], fs)
    window = BeatWindow(100, 100)
    X, kept = segment_beats(filtered[:, 0], peaks, window)
    kept_peaks = peaks[kept]
    X_ds, _ = decimate_beats(X, window, 4)
    labels = embedded_classifier.predict(X_ds)
    return peaks, kept_peaks, X_ds, labels


class TestFullChain:
    def test_detects_most_beats(self, record, chain_outputs):
        peaks, _, _, _ = chain_outputs
        ann = record.annotation.samples
        missed = sum(1 for a in ann if np.min(np.abs(peaks - a)) > 18)
        assert missed / len(ann) < 0.08

    def test_classifier_consumes_detected_beats(self, chain_outputs):
        _, kept_peaks, X_ds, labels = chain_outputs
        assert X_ds.shape == (kept_peaks.size, 50)
        assert labels.shape == (kept_peaks.size,)

    def test_end_to_end_recognition(self, record, chain_outputs):
        """ARR/NDR through the *entire* chain (detector included)."""
        _, kept_peaks, _, labels = chain_outputs
        true_labels, matched = match_peaks_to_annotation(
            kept_peaks, record.annotation, tolerance=18
        )
        y = true_labels[matched]
        predicted = labels[matched]
        abnormal = y != 0
        if abnormal.sum() > 0:
            arr = np.mean(is_abnormal(predicted)[abnormal])
            assert arr > 0.7
        normal = y == 0
        ndr = np.mean(predicted[normal] == 0)
        assert ndr > 0.6

    def test_gated_delineation_runs_on_flagged_beats(
        self, record, filtered, chain_outputs
    ):
        _, kept_peaks, _, labels = chain_outputs
        flagged = kept_peaks[is_abnormal(labels)]
        assert flagged.size > 0
        for peak in flagged[:5]:
            fiducials = delineate_multilead(filtered, int(peak), record.fs)
            assert fiducials.r_peak == peak
            assert fiducials.n_found >= 5

    def test_activation_rate_reasonable(self, chain_outputs):
        """Gating only pays off if most traffic is discarded."""
        _, _, _, labels = chain_outputs
        activation = np.mean(is_abnormal(labels))
        assert activation < 0.6


class TestFloatEmbeddedConsistency:
    def test_decisions_mostly_agree(
        self, embedded_pipeline, embedded_classifier, chain_outputs
    ):
        _, _, X_ds, _ = chain_outputs
        alpha = embedded_classifier.alpha_q16 / 65536
        float_labels = embedded_pipeline.with_shape("linear").with_alpha(alpha).predict(X_ds)
        integer_labels = embedded_classifier.predict(X_ds)
        assert np.mean(float_labels == integer_labels) > 0.85


class TestDigitalPath:
    def test_adc_quantized_record_classifies_like_float(
        self, record, embedded_classifier
    ):
        """Running from ADC counts (the node's real input) must agree
        with the float-mV path on almost all beats."""
        digital = record.to_digital()
        physical = digital.to_physical()
        x = filter_lead(physical.lead(0), record.fs)
        peaks = detect_peaks(x, record.fs)
        window = BeatWindow(100, 100)
        X, _ = segment_beats(x, peaks, window)
        X_ds, _ = decimate_beats(X, window, 4)
        labels_roundtrip = embedded_classifier.predict(X_ds)
        assert labels_roundtrip.shape[0] == X_ds.shape[0]
