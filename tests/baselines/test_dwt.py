"""Tests for Haar wavelet features."""

import numpy as np
import pytest

from repro.baselines.dwt import HaarWaveletFeatures, haar_decompose


class TestHaarDecompose:
    def test_energy_preserved_power_of_two(self, rng):
        X = rng.standard_normal((10, 64))
        W = haar_decompose(X)
        np.testing.assert_allclose(
            np.sum(W**2, axis=1), np.sum(X**2, axis=1), rtol=1e-10
        )

    def test_single_level_values(self):
        x = np.array([1.0, 3.0, 2.0, 6.0])
        W = haar_decompose(x, n_levels=1)
        s2 = np.sqrt(2.0)
        np.testing.assert_allclose(W, [4 / s2, 8 / s2, -2 / s2, -4 / s2])

    def test_constant_signal_detail_free(self):
        x = np.full(32, 5.0)
        W = haar_decompose(x)
        # All energy in the approximation (first coefficient).
        assert abs(W[0]) > 1.0
        np.testing.assert_allclose(W[1:], 0.0, atol=1e-10)

    def test_odd_length_handled(self, rng):
        x = rng.standard_normal(13)
        W = haar_decompose(x, n_levels=2)
        assert W.shape == (13,)

    def test_output_length_equals_input(self, rng):
        for d in (8, 50, 200):
            assert haar_decompose(rng.standard_normal(d)).shape == (d,)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            haar_decompose(np.zeros(8), n_levels=10)
        with pytest.raises(ValueError):
            haar_decompose(np.zeros(8), n_levels=0)

    def test_too_short(self):
        with pytest.raises(ValueError):
            haar_decompose(np.zeros(1))


class TestHaarFeatures:
    def test_selection_picks_high_variance(self, rng):
        # Signal with strong level-1 detail variation in one place.
        X = rng.standard_normal((100, 32)) * 0.01
        X[:, 10] += rng.standard_normal(100) * 5  # big localized variance
        features = HaarWaveletFeatures(3).fit(X)
        transformed = features.transform(X)
        assert transformed.var(axis=0).max() > 1.0

    def test_shapes(self, rng):
        X = rng.standard_normal((20, 50))
        features = HaarWaveletFeatures(8).fit(X)
        assert features.transform(X).shape == (20, 8)
        assert features.transform(X[0]).shape == (8,)

    def test_selected_sorted(self, rng):
        X = rng.standard_normal((20, 50))
        features = HaarWaveletFeatures(8).fit(X)
        assert np.all(np.diff(features.selected_) > 0)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            HaarWaveletFeatures(2).transform(np.zeros((2, 8)))

    def test_dimension_mismatch(self, rng):
        features = HaarWaveletFeatures(2).fit(rng.standard_normal((5, 16)))
        with pytest.raises(ValueError):
            features.transform(np.zeros((2, 8)))

    def test_too_many_components(self):
        with pytest.raises(ValueError):
            HaarWaveletFeatures(100).fit(np.zeros((5, 8)))

    def test_fit_transform(self, rng):
        X = rng.standard_normal((10, 16))
        np.testing.assert_allclose(
            HaarWaveletFeatures(4).fit_transform(X),
            HaarWaveletFeatures(4).fit(X).transform(X),
        )
