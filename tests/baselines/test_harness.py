"""Tests for the generic feature pipeline."""

import numpy as np
import pytest

from repro.baselines.dct import DCTFeatures
from repro.baselines.harness import FeaturePipeline
from repro.baselines.pca import PCAFeatures
from repro.core.defuzz import UNKNOWN_LABEL


@pytest.fixture(scope="module")
def pca_pipeline(datasets):
    return FeaturePipeline.train(
        PCAFeatures(8), datasets.train1, datasets.train2, scg_iterations=60
    )


class TestFeaturePipeline:
    def test_train_produces_working_classifier(self, pca_pipeline, datasets):
        report = pca_pipeline.evaluate(datasets.test)
        assert report.arr > 0.8
        assert report.ndr > 0.5

    def test_predict_domain(self, pca_pipeline, datasets):
        labels = pca_pipeline.predict(datasets.test.X[:50])
        assert set(np.unique(labels)).issubset({UNKNOWN_LABEL, 0, 1, 2})

    def test_tuned_for_reaches_target(self, pca_pipeline, datasets):
        tuned = pca_pipeline.tuned_for(datasets.test, 0.97)
        assert tuned.evaluate(datasets.test).arr >= 0.97 - 1e-9

    def test_with_alpha_validation(self, pca_pipeline):
        with pytest.raises(ValueError):
            pca_pipeline.with_alpha(-0.5)

    def test_score_is_ndr(self, pca_pipeline, datasets):
        assert pca_pipeline.score(datasets.test) == pytest.approx(
            pca_pipeline.evaluate(datasets.test).ndr
        )

    def test_sweep_monotonicity(self, pca_pipeline, datasets):
        _, ndr, arr = pca_pipeline.sweep(datasets.test, np.linspace(0, 1, 21))
        assert np.all(np.diff(ndr) <= 1e-12)
        assert np.all(np.diff(arr) >= -1e-12)

    def test_works_with_dct(self, datasets):
        pipeline = FeaturePipeline.train(
            DCTFeatures(8), datasets.train1, datasets.train2, scg_iterations=40
        )
        report = pipeline.evaluate(datasets.test)
        assert report.arr > 0.5
