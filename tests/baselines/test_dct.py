"""Tests for DCT features."""

import numpy as np
import pytest

from repro.baselines.dct import DCTFeatures, dct_matrix


class TestDCTMatrix:
    def test_orthonormal(self):
        M = dct_matrix(16)
        np.testing.assert_allclose(M @ M.T, np.eye(16), atol=1e-10)

    def test_first_row_is_dc(self):
        M = dct_matrix(8)
        np.testing.assert_allclose(M[0], np.full(8, np.sqrt(1 / 8)))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            dct_matrix(0)


class TestDCTFeatures:
    def test_energy_compaction_on_smooth_signal(self, rng):
        """Smooth beats concentrate energy in few DCT coefficients."""
        t = np.linspace(0, 1, 64)
        X = np.stack([np.sin(2 * np.pi * (1 + i % 3) * t) for i in range(20)])
        dct = DCTFeatures(8).fit(X)
        coefficients = dct.transform(X)
        full = X @ dct_matrix(64).T
        energy_kept = np.sum(coefficients**2) / np.sum(full**2)
        assert energy_kept > 0.95

    def test_transform_matches_matrix_product(self, rng):
        X = rng.standard_normal((10, 32))
        dct = DCTFeatures(5).fit(X)
        np.testing.assert_allclose(dct.transform(X), X @ dct_matrix(32)[:5].T)

    def test_shapes(self, rng):
        X = rng.standard_normal((10, 32))
        dct = DCTFeatures(5).fit(X)
        assert dct.transform(X).shape == (10, 5)
        assert dct.transform(X[0]).shape == (5,)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            DCTFeatures(4).transform(np.zeros((2, 8)))

    def test_too_many_components(self):
        with pytest.raises(ValueError):
            DCTFeatures(10).fit(np.zeros((5, 8)))

    def test_dimension_mismatch(self, rng):
        dct = DCTFeatures(4).fit(rng.standard_normal((5, 16)))
        with pytest.raises(ValueError):
            dct.transform(np.zeros(8))

    def test_fit_transform(self, rng):
        X = rng.standard_normal((6, 20))
        np.testing.assert_allclose(
            DCTFeatures(3).fit_transform(X), DCTFeatures(3).fit(X).transform(X)
        )
