"""Tests for the from-scratch PCA baseline."""

import numpy as np
import pytest

from repro.baselines.pca import PCAFeatures


@pytest.fixture()
def blobs(rng):
    """Data with a known dominant direction."""
    n = 200
    t = rng.standard_normal(n)
    X = np.outer(t, np.array([3.0, 0.0, 0.0, 0.0])) + 0.1 * rng.standard_normal((n, 4))
    return X


class TestFit:
    def test_component_shapes(self, blobs):
        pca = PCAFeatures(2).fit(blobs)
        assert pca.components_.shape == (2, 4)
        assert pca.mean_.shape == (4,)
        assert pca.explained_variance_.shape == (2,)

    def test_components_orthonormal(self, blobs):
        pca = PCAFeatures(3).fit(blobs)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)

    def test_first_component_is_dominant_direction(self, blobs):
        pca = PCAFeatures(1).fit(blobs)
        direction = np.abs(pca.components_[0])
        assert direction[0] > 0.99

    def test_variance_sorted_descending(self, rng):
        X = rng.standard_normal((100, 6)) * np.array([5, 4, 3, 2, 1, 0.5])
        pca = PCAFeatures(6).fit(X)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-9)

    def test_too_many_components(self):
        with pytest.raises(ValueError):
            PCAFeatures(5).fit(np.zeros((3, 4)))

    def test_invalid_n_components(self):
        with pytest.raises(ValueError):
            PCAFeatures(0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            PCAFeatures(1).fit(np.zeros(10))


class TestTransform:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PCAFeatures(2).transform(np.zeros((3, 4)))

    def test_shape(self, blobs):
        pca = PCAFeatures(2).fit(blobs)
        assert pca.transform(blobs).shape == (200, 2)

    def test_single_vector(self, blobs):
        pca = PCAFeatures(2).fit(blobs)
        assert pca.transform(blobs[0]).shape == (2,)

    def test_scores_centered(self, blobs):
        pca = PCAFeatures(2).fit(blobs)
        scores = pca.transform(blobs)
        np.testing.assert_allclose(scores.mean(axis=0), 0.0, atol=1e-9)

    def test_score_variance_matches_explained(self, blobs):
        pca = PCAFeatures(2).fit(blobs)
        scores = pca.transform(blobs)
        np.testing.assert_allclose(
            scores.var(axis=0, ddof=1), pca.explained_variance_, rtol=1e-8
        )

    def test_fit_transform(self, blobs):
        a = PCAFeatures(2).fit_transform(blobs)
        b = PCAFeatures(2).fit(blobs).transform(blobs)
        np.testing.assert_allclose(np.abs(a), np.abs(b))

    def test_dimension_mismatch(self, blobs):
        pca = PCAFeatures(2).fit(blobs)
        with pytest.raises(ValueError):
            pca.transform(np.zeros((3, 5)))

    def test_reconstruction_error_small_for_low_rank(self, blobs):
        pca = PCAFeatures(1).fit(blobs)
        scores = pca.transform(blobs)
        reconstructed = scores @ pca.components_ + pca.mean_
        residual = np.linalg.norm(blobs - reconstructed) / np.linalg.norm(blobs)
        assert residual < 0.2


class TestExplainedVarianceRatio:
    def test_sums_below_one(self, blobs):
        pca = PCAFeatures(2).fit(blobs)
        ratio = pca.explained_variance_ratio(blobs)
        assert 0.9 < ratio.sum() <= 1.0 + 1e-9

    def test_requires_fit(self, blobs):
        with pytest.raises(RuntimeError):
            PCAFeatures(2).explained_variance_ratio(blobs)
