"""Tests for record and beat-window synthesis."""

import numpy as np
import pytest

from repro.ecg.morphologies import BEAT_CLASSES
from repro.ecg.synth import (
    BeatNoiseConfig,
    RecordSynthesizer,
    RhythmConfig,
    SynthesisConfig,
    synthesize_beat_windows,
)


class TestRecordSynthesis:
    def test_record_shape_and_metadata(self):
        synth = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=0)
        record = synth.synthesize(30.0, name="x")
        assert record.signal.shape == (int(30 * 360), 3)
        assert record.fs == 360.0
        assert record.annotation is not None

    def test_beat_count_matches_heart_rate(self):
        synth = RecordSynthesizer(seed=1)
        record = synth.synthesize(60.0)
        # ~77 bpm nominal; allow generous slack for PVC pauses.
        assert 55 <= len(record.annotation) <= 95

    def test_annotated_peaks_are_r_waves(self):
        """Each annotated sample should be near a local amplitude extremum."""
        synth = RecordSynthesizer(SynthesisConfig(noise=_quiet_noise()), seed=2)
        record = synth.synthesize(30.0)
        x = record.lead(0)
        hits = 0
        for peak in record.annotation.samples:
            window = x[peak - 10 : peak + 11]
            if np.argmax(np.abs(window)) in range(5, 16):
                hits += 1
        assert hits / len(record.annotation) > 0.9

    def test_class_mix_respected(self):
        synth = RecordSynthesizer(seed=3)
        record = synth.synthesize(600.0, class_mix={"N": 0.5, "V": 0.5})
        counts = record.annotation.counts()
        assert counts["L"] == 0
        assert counts["V"] > 0.3 * len(record.annotation)

    def test_invalid_mix_symbol(self):
        synth = RecordSynthesizer(seed=0)
        with pytest.raises(ValueError):
            synth.synthesize(10.0, class_mix={"X": 1.0})

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            RecordSynthesizer(seed=0).synthesize(0.0)

    def test_pvc_prematurity(self):
        """RR into a PVC is shorter than the median sinus RR."""
        synth = RecordSynthesizer(
            SynthesisConfig(rhythm=RhythmConfig(rr_rel_std=0.01)), seed=4
        )
        record = synth.synthesize(300.0, class_mix={"N": 0.85, "V": 0.15})
        samples = record.annotation.samples
        symbols = record.annotation.symbols
        rr = np.diff(samples)
        median_rr = np.median(rr)
        pvc_rr = [rr[i - 1] for i in range(1, len(symbols)) if symbols[i] == "V"]
        assert len(pvc_rr) > 3
        assert np.median(pvc_rr) < 0.85 * median_rr

    def test_seeded_determinism(self):
        a = RecordSynthesizer(seed=5).synthesize(10.0)
        b = RecordSynthesizer(seed=5).synthesize(10.0)
        np.testing.assert_array_equal(a.signal, b.signal)
        np.testing.assert_array_equal(a.annotation.samples, b.annotation.samples)

    def test_baseline_wander_present(self):
        synth = RecordSynthesizer(seed=6)
        record = synth.synthesize(30.0)
        x = record.lead(0)
        # Low-frequency content should dominate a moving average.
        smooth = np.convolve(x, np.ones(361) / 361, mode="same")
        assert smooth.std() > 0.05


def _quiet_noise():
    from repro.ecg.synth import NoiseConfig

    return NoiseConfig(baseline_amplitude=0.02, muscle_std=0.005, powerline_amplitude=0.0)


class TestBeatWindows:
    def test_shapes_and_labels(self):
        X, y = synthesize_beat_windows({"N": 10, "V": 5, "L": 3}, seed=0)
        assert X.shape == (18, 200)
        assert y.shape == (18,)
        counts = {s: int(np.sum(y == i)) for i, s in enumerate(BEAT_CLASSES)}
        assert counts == {"N": 10, "V": 5, "L": 3}

    def test_custom_window(self):
        X, _ = synthesize_beat_windows({"N": 4}, pre=25, post=25, fs=90.0, seed=0)
        assert X.shape == (4, 50)

    def test_deterministic(self):
        a, ya = synthesize_beat_windows({"N": 5, "V": 5}, seed=3)
        b, yb = synthesize_beat_windows({"N": 5, "V": 5}, seed=3)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(ya, yb)

    def test_shuffle_interleaves_classes(self):
        _, y = synthesize_beat_windows({"N": 50, "V": 50}, seed=1, shuffle=True)
        # Not all N first: some V in the first half.
        assert np.any(y[:50] == 1)

    def test_no_shuffle_keeps_block_order(self):
        _, y = synthesize_beat_windows({"N": 5, "V": 5}, seed=1, shuffle=False)
        np.testing.assert_array_equal(y[:5], 0)
        np.testing.assert_array_equal(y[5:], 1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            synthesize_beat_windows({"N": -1}, seed=0)

    def test_noise_config_changes_snr(self):
        quiet, _ = synthesize_beat_windows(
            {"N": 30}, seed=2, noise=BeatNoiseConfig(noise_std=0.01, burst_fraction=0.0)
        )
        loud, _ = synthesize_beat_windows(
            {"N": 30}, seed=2, noise=BeatNoiseConfig(noise_std=0.5, burst_fraction=0.0)
        )
        # High-frequency residual (first difference) reflects noise level.
        assert np.diff(loud, axis=1).std() > 3 * np.diff(quiet, axis=1).std()

    def test_r_peak_near_window_center(self):
        X, y = synthesize_beat_windows(
            {"N": 20}, seed=4, noise=BeatNoiseConfig(noise_std=0.01, burst_fraction=0.0)
        )
        peaks = np.argmax(np.abs(X - np.median(X, axis=1, keepdims=True)), axis=1)
        assert np.median(np.abs(peaks - 100)) <= 6

    def test_burst_fraction_creates_heteroscedastic_noise(self):
        X, _ = synthesize_beat_windows(
            {"N": 400},
            seed=5,
            noise=BeatNoiseConfig(noise_std=0.05, burst_fraction=0.2, burst_multiplier=4.0),
        )
        residual_std = np.diff(X, axis=1).std(axis=1)
        # Bimodal: the noisiest decile is much noisier than the median.
        assert np.percentile(residual_std, 95) > 2.0 * np.median(residual_std)
