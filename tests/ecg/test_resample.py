"""Tests for decimation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecg.resample import decimate_beats, decimate_signal, downsampled_length
from repro.ecg.segmentation import BeatWindow


class TestDecimateSignal:
    def test_basic(self):
        x = np.arange(10)
        np.testing.assert_array_equal(decimate_signal(x, 4), [0, 4, 8])

    def test_phase(self):
        x = np.arange(10)
        np.testing.assert_array_equal(decimate_signal(x, 4, phase=1), [1, 5, 9])

    def test_factor_one_is_identity(self):
        x = np.arange(7)
        np.testing.assert_array_equal(decimate_signal(x, 1), x)

    def test_multilead(self):
        x = np.arange(20).reshape(10, 2)
        assert decimate_signal(x, 2).shape == (5, 2)

    @pytest.mark.parametrize("factor,phase", [(0, 0), (4, 4), (4, -1)])
    def test_invalid(self, factor, phase):
        with pytest.raises(ValueError):
            decimate_signal(np.arange(10), factor, phase)


class TestDecimateBeats:
    def test_paper_geometry(self):
        """200 samples at 360 Hz -> 50 samples at 90 Hz."""
        X = np.zeros((3, 200))
        X_ds, window = decimate_beats(X, BeatWindow(100, 100), 4)
        assert X_ds.shape == (3, 50)
        assert window.length == 50

    def test_peak_column_survives(self):
        X = np.zeros((1, 200))
        X[0, 100] = 1.0  # the R peak at column pre=100
        X_ds, window = decimate_beats(X, BeatWindow(100, 100), 4)
        assert X_ds[0, window.pre] == 1.0

    def test_odd_pre_phase(self):
        X = np.zeros((1, 150))
        X[0, 98] = 1.0
        X_ds, window = decimate_beats(X, BeatWindow(98, 52), 4)
        assert X_ds[0, window.pre] == 1.0

    def test_values_are_decimated_signal(self):
        X = np.arange(200.0)[np.newaxis, :]
        X_ds, _ = decimate_beats(X, BeatWindow(100, 100), 4)
        np.testing.assert_array_equal(X_ds[0], np.arange(0.0, 200.0, 4.0))

    def test_factor_one(self):
        X = np.random.default_rng(0).standard_normal((2, 200))
        X_ds, window = decimate_beats(X, BeatWindow(100, 100), 1)
        np.testing.assert_array_equal(X_ds, X)
        assert window == BeatWindow(100, 100)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            decimate_beats(np.zeros((2, 100)), BeatWindow(100, 100), 4)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            decimate_beats(np.zeros((2, 200)), BeatWindow(100, 100), 0)


class TestDownsampledLength:
    @pytest.mark.parametrize(
        "length,factor,phase,expected",
        [(10, 4, 0, 3), (10, 4, 1, 3), (12, 4, 0, 3), (200, 4, 0, 50), (5, 10, 0, 1)],
    )
    def test_values(self, length, factor, phase, expected):
        assert downsampled_length(length, factor, phase) == expected

    def test_zero_when_phase_beyond_length(self):
        assert downsampled_length(2, 4, 3) == 0


@settings(max_examples=50, deadline=None)
@given(
    length=st.integers(1, 500),
    factor=st.integers(1, 8),
    phase=st.integers(0, 7),
)
def test_downsampled_length_matches_slice(length, factor, phase):
    """Property: the closed form equals len(x[phase::factor])."""
    if phase >= factor:
        return
    x = np.zeros(length)
    assert downsampled_length(length, factor, phase) == x[phase::factor].size
