"""Tests for the Table-I dataset builder."""

import numpy as np
import pytest

from repro.ecg.mitbih import (
    TABLE_I,
    BeatDatasets,
    LabeledBeats,
    make_datasets,
    scaled_counts,
)
from repro.ecg.segmentation import BeatWindow


class TestTableIConstants:
    def test_paper_counts(self):
        assert TABLE_I["train1"] == {"N": 150, "V": 150, "L": 150}
        assert TABLE_I["train2"] == {"N": 10024, "V": 892, "L": 1084}
        assert TABLE_I["test"] == {"N": 74355, "V": 6618, "L": 8039}

    def test_paper_totals(self):
        assert sum(TABLE_I["train1"].values()) == 450
        assert sum(TABLE_I["train2"].values()) == 12000
        assert sum(TABLE_I["test"].values()) == 89012


class TestScaledCounts:
    def test_identity_at_one(self):
        assert scaled_counts(TABLE_I["test"], 1.0) == TABLE_I["test"]

    def test_classes_never_empty(self):
        scaled = scaled_counts(TABLE_I["train2"], 0.0001)
        assert all(v >= 2 for v in scaled.values())

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_counts(TABLE_I["test"], 0.0)


class TestLabeledBeats:
    def test_validation(self):
        with pytest.raises(ValueError):
            LabeledBeats(np.zeros((3, 10)), np.zeros(2, dtype=int), BeatWindow(5, 5), 360.0)
        with pytest.raises(ValueError):
            LabeledBeats(np.zeros((3, 12)), np.zeros(3, dtype=int), BeatWindow(5, 5), 360.0)

    def test_counts_and_subset(self, datasets):
        t1 = datasets.train1
        counts = t1.counts()
        assert sum(counts.values()) == len(t1)
        sub = t1.subset(t1.y == 0)
        assert set(np.unique(sub.y)) == {0}
        assert sub.window == t1.window


class TestMakeDatasets:
    def test_scaled_composition(self, datasets):
        composition = datasets.composition()
        for set_name in ("train1", "train2", "test"):
            expected = scaled_counts(TABLE_I[set_name], 0.03)
            assert composition[set_name] == expected

    def test_sets_are_independent_draws(self, datasets):
        # No identical rows between train1 and train2.
        a = datasets.train1.X[:5]
        for row in a:
            assert not np.any(np.all(datasets.train2.X == row, axis=1))

    def test_beat_geometry(self, datasets):
        assert datasets.train1.X.shape[1] == 200
        assert datasets.train1.fs == 360.0
        assert datasets.train1.window.length == 200

    def test_deterministic(self):
        a = make_datasets(scale=0.01, seed=3)
        b = make_datasets(scale=0.01, seed=3)
        np.testing.assert_array_equal(a.train1.X, b.train1.X)
        np.testing.assert_array_equal(a.test.y, b.test.y)

    def test_seed_changes_data(self):
        a = make_datasets(scale=0.01, seed=3)
        b = make_datasets(scale=0.01, seed=4)
        assert not np.allclose(a.train1.X, b.train1.X)

    def test_returns_beatdatasets(self, datasets):
        assert isinstance(datasets, BeatDatasets)
