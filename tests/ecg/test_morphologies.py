"""Tests for the parametric beat morphologies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecg.morphologies import (
    ABNORMAL_CLASSES,
    BEAT_CLASSES,
    CLASS_TO_INDEX,
    BeatMorphology,
    WaveComponent,
    lbbb_model,
    model_for,
    normal_model,
    pvc_model,
    qrs_duration,
)


class TestConstants:
    def test_class_order(self):
        assert BEAT_CLASSES == ("N", "V", "L")
        assert CLASS_TO_INDEX["N"] == 0

    def test_abnormal_classes(self):
        assert set(ABNORMAL_CLASSES) == {"V", "L"}


class TestWaveComponent:
    def test_peak_at_center(self):
        c = WaveComponent("R", 1.0, 0.01, 0.02)
        t = np.linspace(-0.1, 0.1, 201)
        wave = c.evaluate(t)
        assert t[np.argmax(wave)] == pytest.approx(0.01, abs=1e-3)
        assert wave.max() == pytest.approx(1.0, abs=1e-6)

    def test_negative_amplitude(self):
        c = WaveComponent("Q", -0.5, 0.0, 0.01)
        assert c.evaluate(np.array([0.0]))[0] == pytest.approx(-0.5)


class TestTemplates:
    @pytest.mark.parametrize("factory", [normal_model, lbbb_model, pvc_model])
    def test_template_has_r_and_t(self, factory):
        template = factory().template
        assert template.component("R").amplitude != 0
        assert template.component("T").amplitude != 0

    def test_normal_has_p_wave(self):
        assert normal_model().template.component("P").amplitude > 0

    def test_pvc_has_no_p_wave(self):
        with pytest.raises(KeyError):
            pvc_model().template.component("P")

    def test_lbbb_t_is_discordant(self):
        """LBBB: T wave inverted relative to the (positive) R."""
        template = lbbb_model().template
        assert template.component("R").amplitude > 0
        assert template.component("T").amplitude < 0

    def test_qrs_duration_ordering(self):
        """Physiology: N (narrow) < L (broad) and N < V (broad)."""
        n = qrs_duration(normal_model().template)
        l = qrs_duration(lbbb_model().template)
        v = qrs_duration(pvc_model().template)
        assert n < l
        assert n < v
        assert n < 0.12  # normal QRS under 120 ms
        assert l > 0.12  # LBBB over 120 ms

    def test_peak_is_at_window_center(self):
        for factory in (normal_model, lbbb_model, pvc_model):
            template = factory().template
            window = template.sample_window(360.0, 100, 100)
            peak = np.argmax(np.abs(window))
            assert abs(int(peak) - 100) <= 8


class TestSampling:
    def test_sample_window_length(self):
        template = normal_model().template
        assert template.sample_window(360.0, 100, 100).shape == (200,)
        assert template.sample_window(90.0, 25, 25).shape == (50,)

    def test_label_property(self):
        assert normal_model().template.label == 0
        assert pvc_model().template.label == 1
        assert lbbb_model().template.label == 2

    def test_draw_produces_variability(self, rng):
        model = normal_model()
        a = model.draw(rng).sample_window(360.0, 100, 100)
        b = model.draw(rng).sample_window(360.0, 100, 100)
        assert not np.allclose(a, b)

    def test_draw_keeps_symbol(self, rng):
        for symbol in BEAT_CLASSES:
            assert model_for(symbol).draw(rng).symbol == symbol

    def test_draws_stay_near_template(self, rng):
        model = normal_model()
        template_wave = model.template.sample_window(360.0, 100, 100)
        correlations = []
        for _ in range(30):
            wave = model.draw(rng).sample_window(360.0, 100, 100)
            correlations.append(np.corrcoef(wave, template_wave)[0, 1])
        assert np.median(correlations) > 0.8

    def test_ambiguous_blend_adds_mix_components(self):
        model = normal_model()
        rng = np.random.default_rng(0)
        saw_mix = False
        for _ in range(200):
            beat = model.draw(rng)
            if any(c.name.endswith("_mix") for c in beat.components):
                saw_mix = True
                break
        assert saw_mix, "expected some ambiguous normal beats"

    def test_ambiguous_fraction_roughly_respected(self):
        model = normal_model()
        rng = np.random.default_rng(1)
        n_mix = sum(
            any(c.name.endswith("_mix") for c in model.draw(rng).components)
            for _ in range(2000)
        )
        assert 0.03 < n_mix / 2000 < 0.15


class TestModelFor:
    def test_known_symbols(self):
        for symbol in BEAT_CLASSES:
            assert model_for(symbol).symbol == symbol

    def test_unknown_symbol(self):
        with pytest.raises(ValueError, match="unknown beat class"):
            model_for("X")


class TestComponentLookup:
    def test_missing_component(self):
        template = BeatMorphology("N", (WaveComponent("R", 1.0, 0.0, 0.01),))
        with pytest.raises(KeyError):
            template.component("T")

    def test_waveform_is_sum(self):
        a = WaveComponent("R", 1.0, 0.0, 0.02)
        b = WaveComponent("T", 0.3, 0.2, 0.04)
        combined = BeatMorphology("N", (a, b))
        t = np.linspace(-0.3, 0.4, 100)
        np.testing.assert_allclose(combined.waveform(t), a.evaluate(t) + b.evaluate(t))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), symbol=st.sampled_from(BEAT_CLASSES))
def test_draws_always_finite_and_bounded(seed, symbol):
    """Property: every drawn beat is finite with physiological amplitude."""
    rng = np.random.default_rng(seed)
    wave = model_for(symbol).draw(rng).sample_window(360.0, 100, 100)
    assert np.all(np.isfinite(wave))
    assert np.max(np.abs(wave)) < 10.0  # mV sanity bound
