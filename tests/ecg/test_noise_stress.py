"""Tests for the noise-stress tooling."""

import numpy as np
import pytest

from repro.ecg.noise_stress import (
    NOISE_KINDS,
    add_noise_at_snr,
    realized_snr_db,
    signal_power,
)
from repro.ecg.synth import synthesize_beat_windows


@pytest.fixture(scope="module")
def clean_beats():
    X, _ = synthesize_beat_windows({"N": 40}, seed=5)
    return X


class TestSignalPower:
    def test_dc_invariant(self, rng):
        x = rng.standard_normal((5, 100))
        shifted = x + 10.0
        np.testing.assert_allclose(signal_power(x), signal_power(shifted))

    def test_scales_quadratically(self, rng):
        x = rng.standard_normal((5, 100))
        np.testing.assert_allclose(signal_power(2 * x), 4 * signal_power(x))


class TestAddNoise:
    @pytest.mark.parametrize("kind", NOISE_KINDS)
    def test_realized_snr_close_to_target(self, clean_beats, kind):
        for target in (6.0, 12.0, 24.0):
            noisy = add_noise_at_snr(clean_beats, target, kind=kind, rng=0)
            realized = realized_snr_db(clean_beats, noisy)
            assert np.median(realized) == pytest.approx(target, abs=1.0)

    def test_lower_snr_is_noisier(self, clean_beats):
        mild = add_noise_at_snr(clean_beats, 24.0, rng=1)
        harsh = add_noise_at_snr(clean_beats, 6.0, rng=1)
        assert np.mean((harsh - clean_beats) ** 2) > np.mean((mild - clean_beats) ** 2)

    def test_input_not_mutated(self, clean_beats):
        before = clean_beats.copy()
        add_noise_at_snr(clean_beats, 12.0, rng=2)
        np.testing.assert_array_equal(clean_beats, before)

    def test_unknown_kind(self, clean_beats):
        with pytest.raises(ValueError, match="unknown noise kind"):
            add_noise_at_snr(clean_beats, 12.0, kind="powerline")

    def test_bw_noise_is_low_frequency(self, clean_beats):
        noisy = add_noise_at_snr(clean_beats, 6.0, kind="bw", rng=3)
        contamination = noisy - clean_beats
        # Baseline wander has little sample-to-sample variation.
        ratio = np.abs(np.diff(contamination, axis=1)).mean() / np.abs(
            contamination
        ).mean()
        assert ratio < 0.3

    def test_ma_noise_is_wideband(self, clean_beats):
        noisy = add_noise_at_snr(clean_beats, 6.0, kind="ma", rng=3)
        contamination = noisy - clean_beats
        ratio = np.abs(np.diff(contamination, axis=1)).mean() / np.abs(
            contamination
        ).mean()
        assert ratio > 0.8

    def test_em_between(self, clean_beats):
        noisy = add_noise_at_snr(clean_beats, 6.0, kind="em", rng=3)
        contamination = noisy - clean_beats
        ratio = np.abs(np.diff(contamination, axis=1)).mean() / np.abs(
            contamination
        ).mean()
        assert 0.01 < ratio < 0.8


class TestRealizedSnr:
    def test_shape_mismatch(self, clean_beats):
        with pytest.raises(ValueError):
            realized_snr_db(clean_beats, clean_beats[:, :-1])

    def test_identical_signals_give_huge_snr(self, clean_beats):
        snr = realized_snr_db(clean_beats, clean_beats)
        assert np.all(snr > 100.0)
