"""Tests for multi-lead beat synthesis and ground-truth fiducials."""

import numpy as np
import pytest

from repro.ecg.morphologies import model_for
from repro.ecg.synth import synthesize_beat_windows, true_fiducials


class TestMultileadWindows:
    def test_shape(self):
        X, y = synthesize_beat_windows(
            {"N": 5, "V": 3}, seed=0, lead_gains=(1.0, 0.75, -0.55)
        )
        assert X.shape == (8, 600)
        assert y.shape == (8,)

    def test_single_lead_default_unchanged(self):
        X, _ = synthesize_beat_windows({"N": 4}, seed=0)
        assert X.shape == (4, 200)

    def test_leads_share_the_waveform(self):
        from repro.ecg.synth import BeatNoiseConfig

        quiet = BeatNoiseConfig(
            residual_baseline=0.0, noise_std=1e-4, jitter_std=0.0, burst_fraction=0.0
        )
        X, _ = synthesize_beat_windows(
            {"N": 6}, seed=1, noise=quiet, lead_gains=(1.0, -0.5)
        )
        lead0 = X[:, :200]
        lead1 = X[:, 200:]
        # lead1 = -0.5 * lead0 up to the tiny independent noise.
        np.testing.assert_allclose(lead1, -0.5 * lead0, atol=2e-3)

    def test_lead_noise_independent(self):
        X, _ = synthesize_beat_windows({"N": 10}, seed=2, lead_gains=(1.0, 1.0))
        lead0 = X[:, :200]
        lead1 = X[:, 200:]
        assert not np.allclose(lead0, lead1)

    def test_empty_gains_rejected(self):
        with pytest.raises(ValueError):
            synthesize_beat_windows({"N": 1}, lead_gains=())


class TestTrueFiducials:
    def test_normal_beat_has_all_nine(self, rng):
        beat = model_for("N").draw(rng)
        truth = true_fiducials(beat, 1000, 360.0)
        assert truth.shape == (9,)
        assert np.all(truth >= 0)

    def test_pvc_lacks_p(self, rng):
        beat = model_for("V").draw(rng)
        truth = true_fiducials(beat, 1000, 360.0)
        assert truth[0] == truth[1] == truth[2] == -1
        assert truth[4] == 1000

    def test_ordering(self, rng):
        for symbol in ("N", "L"):
            beat = model_for(symbol).draw(rng)
            truth = true_fiducials(beat, 5000, 360.0)
            found = truth[truth >= 0]
            assert np.all(np.diff(found) >= 0)

    def test_qrs_width_tracks_morphology(self, rng):
        narrow = true_fiducials(model_for("N").draw(rng), 1000, 360.0)
        wide = true_fiducials(model_for("L").draw(rng), 1000, 360.0)
        assert (wide[5] - wide[3]) > (narrow[5] - narrow[3])

    def test_r_peak_is_anchor(self, rng):
        beat = model_for("N").draw(rng)
        truth = true_fiducials(beat, 777, 360.0)
        assert truth[4] == 777
