"""Tests for Record / Annotation containers."""

import numpy as np
import pytest

from repro.ecg.database import Annotation, Record


class TestAnnotation:
    def test_basic(self):
        ann = Annotation(np.array([100, 300, 500]), ["N", "V", "L"])
        assert len(ann) == 3
        np.testing.assert_array_equal(ann.labels, [0, 1, 2])

    def test_counts(self):
        ann = Annotation(np.array([1, 2, 3, 4]), ["N", "N", "V", "N"])
        assert ann.counts() == {"N": 3, "V": 1, "L": 0}

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="symbols"):
            Annotation(np.array([1, 2]), ["N"])

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError, match="increasing"):
            Annotation(np.array([5, 3]), ["N", "N"])

    def test_rejects_unknown_symbol(self):
        with pytest.raises(ValueError, match="unknown beat symbols"):
            Annotation(np.array([1]), ["Q"])

    def test_rejects_2d_samples(self):
        with pytest.raises(ValueError):
            Annotation(np.zeros((2, 2), dtype=int), ["N", "N"])

    def test_select(self):
        ann = Annotation(np.array([1, 2, 3]), ["N", "V", "L"])
        sub = ann.select(np.array([True, False, True]))
        assert sub.symbols == ["N", "L"]
        np.testing.assert_array_equal(sub.samples, [1, 3])


class TestRecord:
    def test_1d_signal_promoted(self):
        record = Record("r", np.zeros(100))
        assert record.signal.shape == (100, 1)
        assert record.n_leads == 1

    def test_properties(self):
        record = Record("r", np.zeros((720, 3)), fs=360.0)
        assert record.n_samples == 720
        assert record.duration == pytest.approx(2.0)
        assert record.lead(2).shape == (720,)

    def test_default_lead_names(self):
        record = Record("r", np.zeros((10, 2)))
        assert record.lead_names == ("lead0", "lead1")

    def test_lead_name_mismatch(self):
        with pytest.raises(ValueError, match="lead name"):
            Record("r", np.zeros((10, 2)), lead_names=("a",))

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            Record("r", np.zeros((2, 2, 2)))

    def test_rejects_bad_fs(self):
        with pytest.raises(ValueError):
            Record("r", np.zeros(10), fs=0.0)


class TestDigitalConversion:
    def test_roundtrip_within_quantization(self, rng):
        # Amplitudes kept inside the 11-bit ADC range (~±5.1 mV).
        signal = rng.standard_normal((500, 2)) * 1.2
        record = Record("r", signal)
        recovered = record.to_digital().to_physical()
        # One ADC count = 1/200 mV.
        assert np.max(np.abs(recovered.signal - signal)) <= 0.5 / 200 + 1e-12

    def test_digital_dtype_and_range(self, rng):
        record = Record("r", rng.standard_normal((100, 1)))
        digital = record.to_digital()
        assert digital.is_digital
        assert digital.signal.min() >= 0
        assert digital.signal.max() <= (1 << 11) - 1

    def test_clipping_at_adc_limits(self):
        record = Record("r", np.array([[100.0], [-100.0]]))
        digital = record.to_digital()
        assert digital.signal[0, 0] == (1 << 11) - 1
        assert digital.signal[1, 0] == 0

    def test_idempotent(self, rng):
        record = Record("r", rng.standard_normal((50, 1)))
        digital = record.to_digital()
        assert digital.to_digital() is digital
        physical = digital.to_physical()
        assert physical.to_physical() is physical

    def test_annotation_carried_through(self):
        ann = Annotation(np.array([10]), ["N"])
        record = Record("r", np.zeros(100), annotation=ann)
        assert record.to_digital().annotation is ann
