"""Tests for subject-level morphology variation."""

import numpy as np
import pytest

from repro.ecg.morphologies import BEAT_CLASSES, model_for
from repro.ecg.subjects import (
    SubjectVariability,
    subject_models,
    synthesize_subject_windows,
)


class TestSubjectModels:
    def test_one_model_per_class(self, rng):
        models = subject_models(rng)
        assert set(models) == set(BEAT_CLASSES)

    def test_subjects_differ(self):
        rng = np.random.default_rng(0)
        a = subject_models(rng)
        b = subject_models(rng)
        wave_a = a["N"].template.sample_window(360.0, 100, 100)
        wave_b = b["N"].template.sample_window(360.0, 100, 100)
        assert not np.allclose(wave_a, wave_b)

    def test_subject_close_to_population_template(self, rng):
        models = subject_models(rng)
        subject_wave = models["N"].template.sample_window(360.0, 100, 100)
        population_wave = model_for("N").template.sample_window(360.0, 100, 100)
        assert np.corrcoef(subject_wave, population_wave)[0, 1] > 0.6

    def test_zero_variability_reproduces_population(self, rng):
        still = SubjectVariability(0.0, 0.0, 0.0, 0.0)
        models = subject_models(rng, still)
        np.testing.assert_allclose(
            models["L"].template.sample_window(360.0, 100, 100),
            model_for("L").template.sample_window(360.0, 100, 100),
        )

    def test_class_jitter_settings_preserved(self, rng):
        models = subject_models(rng)
        assert models["V"].ambiguous_target == model_for("V").ambiguous_target


class TestSubjectWindows:
    def test_shapes_and_ids(self):
        X, y, subjects = synthesize_subject_windows(
            4, {"N": 5, "V": 2}, seed=0
        )
        assert X.shape == (28, 200)
        assert set(np.unique(subjects)) == {0, 1, 2, 3}
        for s in range(4):
            assert np.sum(subjects == s) == 7

    def test_class_counts_per_subject(self):
        _, y, subjects = synthesize_subject_windows(3, {"N": 4, "L": 2}, seed=1)
        for s in range(3):
            mask = subjects == s
            assert np.sum(y[mask] == 0) == 4
            assert np.sum(y[mask] == 2) == 2

    def test_same_subject_seed_same_factors(self):
        """Different beat seeds with one subject seed share morphology."""
        Xa, _, sa = synthesize_subject_windows(
            2, {"N": 40}, seed=10, subject_seed=5
        )
        Xb, _, sb = synthesize_subject_windows(
            2, {"N": 40}, seed=20, subject_seed=5
        )
        # Beats differ ...
        assert not np.allclose(Xa, Xb)
        # ... but each subject's mean beat stays highly correlated
        # across draws (persistent factors dominate the 40-beat mean;
        # per-beat jitter and ambiguous blends leave a little variance).
        for s in (0, 1):
            mean_a = Xa[sa == s].mean(axis=0)
            mean_b = Xb[sb == s].mean(axis=0)
            assert np.corrcoef(mean_a, mean_b)[0, 1] > 0.95

    def test_different_subject_seed_changes_factors(self):
        Xa, _, sa = synthesize_subject_windows(1, {"N": 40}, seed=10, subject_seed=5)
        Xb, _, sb = synthesize_subject_windows(1, {"N": 40}, seed=10, subject_seed=6)
        corr = np.corrcoef(Xa.mean(axis=0), Xb.mean(axis=0))[0, 1]
        assert corr < 0.999

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_subject_windows(0, {"N": 1})
        with pytest.raises(ValueError):
            synthesize_subject_windows(1, {"N": -1})
