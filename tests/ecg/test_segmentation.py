"""Tests for beat segmentation and peak/annotation matching."""

import numpy as np
import pytest

from repro.ecg.database import Annotation, Record
from repro.ecg.segmentation import (
    BeatWindow,
    match_peaks_to_annotation,
    segment_beats,
    segment_record,
)


class TestBeatWindow:
    def test_paper_default(self):
        window = BeatWindow()
        assert window.pre == 100
        assert window.post == 100
        assert window.length == 200

    def test_scaled(self):
        assert BeatWindow(100, 100).scaled(4) == BeatWindow(25, 25)

    def test_invalid(self):
        with pytest.raises(ValueError):
            BeatWindow(-1, 10)
        with pytest.raises(ValueError):
            BeatWindow(10, 0)
        with pytest.raises(ValueError):
            BeatWindow().scaled(0)


class TestSegmentBeats:
    def test_window_content(self):
        signal = np.arange(1000.0)
        X, kept = segment_beats(signal, np.array([500]), BeatWindow(100, 100))
        assert X.shape == (1, 200)
        np.testing.assert_array_equal(X[0], np.arange(400.0, 600.0))
        assert kept.all()

    def test_peak_at_window_pre_index(self):
        signal = np.zeros(1000)
        signal[500] = 1.0
        X, _ = segment_beats(signal, np.array([500]), BeatWindow(100, 100))
        assert X[0, 100] == 1.0

    def test_boundary_beats_dropped(self):
        signal = np.zeros(1000)
        peaks = np.array([50, 500, 950])
        X, kept = segment_beats(signal, peaks, BeatWindow(100, 100))
        np.testing.assert_array_equal(kept, [False, True, False])
        assert X.shape == (1, 200)

    def test_exact_boundaries_kept(self):
        signal = np.zeros(300)
        X, kept = segment_beats(signal, np.array([100, 200]), BeatWindow(100, 100))
        np.testing.assert_array_equal(kept, [True, True])

    def test_preserves_dtype(self):
        signal = np.zeros(400, dtype=np.int32)
        X, _ = segment_beats(signal, np.array([200]), BeatWindow(100, 100))
        assert X.dtype == np.int32

    def test_rejects_multilead(self):
        with pytest.raises(ValueError):
            segment_beats(np.zeros((100, 2)), np.array([50]))


class TestSegmentRecord:
    def _record(self):
        signal = np.zeros(2000)
        for p in (300, 700, 1100, 1500):
            signal[p] = 1.0
        ann = Annotation(np.array([300, 700, 1100, 1500]), ["N", "V", "L", "N"])
        return Record("r", signal, annotation=ann)

    def test_with_annotation(self):
        X, y = segment_record(self._record())
        assert X.shape == (4, 200)
        np.testing.assert_array_equal(y, [0, 1, 2, 0])

    def test_with_detected_peaks(self):
        record = self._record()
        detected = np.array([302, 698, 1103, 1499])  # small localization error
        X, y = segment_record(record, peaks=detected)
        assert X.shape == (4, 200)
        np.testing.assert_array_equal(y, [0, 1, 2, 0])

    def test_unmatched_detections_dropped(self):
        record = self._record()
        detected = np.array([302, 900])  # 900 matches nothing
        X, y = segment_record(record, peaks=detected)
        assert X.shape == (1, 200)
        np.testing.assert_array_equal(y, [0])

    def test_no_annotation_no_peaks(self):
        record = Record("r", np.zeros(100))
        with pytest.raises(ValueError):
            segment_record(record)

    def test_no_annotation_with_peaks_gives_unlabeled(self):
        record = Record("r", np.zeros(1000))
        X, y = segment_record(record, peaks=np.array([500]))
        assert X.shape == (1, 200)
        np.testing.assert_array_equal(y, [-1])


class TestMatching:
    def test_one_to_one(self):
        ann = Annotation(np.array([100, 200, 300]), ["N", "V", "L"])
        labels, matched = match_peaks_to_annotation(np.array([98, 203, 301]), ann, 10)
        np.testing.assert_array_equal(labels, [0, 1, 2])
        assert matched.all()

    def test_each_annotation_claimed_once(self):
        ann = Annotation(np.array([100]), ["V"])
        labels, matched = match_peaks_to_annotation(np.array([98, 102]), ann, 10)
        assert matched.sum() == 1
        assert labels[matched][0] == 1

    def test_closest_detection_wins(self):
        ann = Annotation(np.array([100]), ["V"])
        labels, _ = match_peaks_to_annotation(np.array([95, 99]), ann, 10)
        assert labels[1] == 1 and labels[0] == -1

    def test_tolerance_respected(self):
        ann = Annotation(np.array([100]), ["N"])
        _, matched = match_peaks_to_annotation(np.array([150]), ann, 10)
        assert not matched.any()
