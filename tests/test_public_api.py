"""Public-API surface tests: imports, exports, docstrings, version.

A downstream user's first contact with the package is its import
surface; these tests pin it down so refactors cannot silently drop
documented entry points.
"""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.achlioptas",
    "repro.core.defuzz",
    "repro.core.genetic",
    "repro.core.membership",
    "repro.core.metrics",
    "repro.core.nfc",
    "repro.core.pipeline",
    "repro.core.scg",
    "repro.core.training",
    "repro.core.validation",
    "repro.fixedpoint",
    "repro.fixedpoint.codegen",
    "repro.fixedpoint.convert",
    "repro.fixedpoint.integer_nfc",
    "repro.fixedpoint.linearize",
    "repro.fixedpoint.packed_matrix",
    "repro.fixedpoint.qformat",
    "repro.ecg",
    "repro.ecg.database",
    "repro.ecg.mitbih",
    "repro.ecg.morphologies",
    "repro.ecg.noise_stress",
    "repro.ecg.resample",
    "repro.ecg.segmentation",
    "repro.ecg.subjects",
    "repro.ecg.synth",
    "repro.dsp",
    "repro.dsp.delineation",
    "repro.dsp.delineation_eval",
    "repro.dsp.mmd",
    "repro.dsp.morphological",
    "repro.dsp.peak_detection",
    "repro.dsp.streaming",
    "repro.dsp.wavelet",
    "repro.baselines",
    "repro.platform",
    "repro.platform.battery",
    "repro.platform.cpu",
    "repro.platform.energy",
    "repro.platform.icyheart",
    "repro.platform.memory",
    "repro.platform.node_sim",
    "repro.platform.opcount",
    "repro.platform.profiles",
    "repro.platform.radio",
    "repro.experiments",
    "repro.experiments.alpha_tuning",
    "repro.experiments.cross_subject",
    "repro.experiments.datasets",
    "repro.experiments.energy",
    "repro.experiments.figure4",
    "repro.experiments.figure5",
    "repro.experiments.multilead",
    "repro.experiments.noise_robustness",
    "repro.experiments.report",
    "repro.experiments.table2",
    "repro.experiments.table3",
    "repro.serving",
    "repro.serving.analytics",
    "repro.serving.autoscale",
    "repro.serving.durability",
    "repro.serving.engine",
    "repro.serving.executors",
    "repro.serving.federation",
    "repro.serving.gateway",
    "repro.serving.loadgen",
    "repro.serving.net",
    "repro.serving.net.client",
    "repro.serving.net.protocol",
    "repro.serving.net.server",
    "repro.serving.results",
    "repro.serving.sharded",
    "repro.io",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 40


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_package_all_exports_resolve():
    import repro.core
    import repro.dsp
    import repro.ecg
    import repro.fixedpoint
    import repro.platform

    for package in (repro.core, repro.dsp, repro.ecg, repro.fixedpoint, repro.platform):
        for name in package.__all__:
            assert hasattr(package, name), f"{package.__name__}.{name} missing"


def test_public_classes_have_docstrings():
    from repro.core.nfc import NeuroFuzzyClassifier
    from repro.core.pipeline import RPClassifierPipeline
    from repro.fixedpoint.convert import EmbeddedClassifier
    from repro.platform.node_sim import NodeSimulator

    for cls in (NeuroFuzzyClassifier, RPClassifierPipeline, EmbeddedClassifier, NodeSimulator):
        assert cls.__doc__
        for name, attr in vars(cls).items():
            if callable(attr) and not name.startswith("_"):
                assert attr.__doc__, f"{cls.__name__}.{name} lacks a docstring"
