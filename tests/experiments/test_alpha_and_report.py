"""Tests for the alpha-decoupling experiment and the report generator."""

import numpy as np
import pytest

from repro.core.genetic import GeneticConfig
from repro.experiments.alpha_tuning import (
    AlphaTuningConfig,
    format_alpha_tuning,
    run_alpha_tuning,
)
from repro.experiments.report import ReportConfig, generate_report

TINY_GA = GeneticConfig(population_size=4, generations=2)


class TestAlphaTuning:
    @pytest.fixture(scope="class")
    def results(self):
        config = AlphaTuningConfig(
            scale=0.03, seed=3, genetic=TINY_GA, scg_iterations=50
        )
        return run_alpha_tuning(config)

    def test_grid_rows(self, results):
        assert set(results) == set(AlphaTuningConfig().train_targets)

    def test_alpha_train_monotone_in_target(self, results):
        alphas = [results[t]["alpha_train"] for t in sorted(results)]
        assert all(b >= a - 1e-12 for a, b in zip(alphas, alphas[1:]))

    def test_retuned_policy_independent_of_training_target(self, results):
        """The decoupling claim: identical margins -> identical tuning."""
        ndr = [row["retuned_ndr"] for row in results.values()]
        arr = [row["retuned_arr"] for row in results.values()]
        assert max(ndr) - min(ndr) < 1e-9
        assert max(arr) - min(arr) < 1e-9

    def test_retuned_meets_deployment_target(self, results):
        for row in results.values():
            assert row["retuned_arr"] >= 96.9

    def test_frozen_arr_tracks_training_target(self, results):
        frozen = [results[t]["frozen_arr"] for t in sorted(results)]
        assert frozen == sorted(frozen)

    def test_format(self, results):
        text = format_alpha_tuning(results)
        assert "a_train" in text and "retuned NDR" in text


class TestReport:
    @pytest.fixture(scope="class")
    def report_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("report")
        config = ReportConfig(scale=0.02, seed=3, genetic=TINY_GA)
        generate_report(out, config)
        return out

    def test_markdown_written(self, report_dir):
        text = (report_dir / "report.md").read_text()
        for section in (
            "Table I",
            "Table II",
            "Figure 4",
            "Figure 5",
            "Table III",
            "Section IV-E",
            "multi-lead",
            "noise stress",
            "alpha decoupling",
        ):
            assert section in text

    def test_paper_values_quoted(self, report_dir):
        text = (report_dir / "report.md").read_text()
        assert "93.74" in text  # paper Table II anchor
        assert "76.68" in text  # paper Table III anchor

    def test_csv_sweeps_written(self, report_dir):
        for name in (
            "figure4_curves.csv",
            "figure5_gaussian.csv",
            "figure5_linear.csv",
            "figure5_triangular.csv",
            "noise_robustness.csv",
        ):
            path = report_dir / name
            assert path.exists()
            header = path.read_text().splitlines()[0]
            assert "," in header

    def test_figure5_csv_parses(self, report_dir):
        rows = (report_dir / "figure5_gaussian.csv").read_text().splitlines()
        alphas = [float(r.split(",")[0]) for r in rows[1:]]
        assert alphas[0] == 0.0 and alphas[-1] == 1.0
        ndr = np.array([float(r.split(",")[1]) for r in rows[1:]])
        assert np.all(np.diff(ndr) <= 1e-12)
