"""Tests for the shared experiment dataset builders."""

import numpy as np
import pytest

from repro.ecg.mitbih import TABLE_I, scaled_counts
from repro.experiments.datasets import (
    decimate_labeled,
    format_table1,
    make_beat_datasets,
    make_embedded_datasets,
    table1_counts,
)


class TestCaching:
    def test_same_config_returns_cached_object(self):
        a = make_beat_datasets(scale=0.01, seed=2)
        b = make_beat_datasets(scale=0.01, seed=2)
        assert a is b

    def test_different_config_differs(self):
        a = make_beat_datasets(scale=0.01, seed=2)
        b = make_beat_datasets(scale=0.01, seed=3)
        assert a is not b


class TestEmbeddedDatasets:
    def test_paired_sample_for_sample(self):
        full = make_beat_datasets(scale=0.01, seed=5)
        embedded = make_embedded_datasets(scale=0.01, seed=5)
        np.testing.assert_array_equal(embedded.test.y, full.test.y)
        np.testing.assert_array_equal(embedded.test.X, full.test.X[:, ::4])

    def test_geometry(self):
        embedded = make_embedded_datasets(scale=0.01, seed=5)
        assert embedded.train1.X.shape[1] == 50
        assert embedded.train1.fs == 90.0
        assert embedded.train1.window.length == 50

    def test_decimate_labeled_preserves_labels(self, datasets):
        decimated = decimate_labeled(datasets.train1)
        np.testing.assert_array_equal(decimated.y, datasets.train1.y)


class TestTable1:
    def test_counts_structure(self):
        counts = table1_counts(scale=0.01, seed=0)
        assert set(counts) == {"train1", "train2", "test"}
        for per_class in counts.values():
            assert set(per_class) == {"N", "V", "L"}

    def test_counts_match_scaled_table(self):
        counts = table1_counts(scale=0.01, seed=0)
        for name in counts:
            assert counts[name] == scaled_counts(TABLE_I[name], 0.01)

    def test_format_renders_all_rows(self):
        text = format_table1(table1_counts(scale=0.01, seed=0))
        for name in ("train1", "train2", "test", "total"):
            assert name in text
