"""Tests for the extension experiments (multi-lead, noise robustness)."""

import numpy as np
import pytest

from repro.core.genetic import GeneticConfig
from repro.experiments.multilead import (
    LEAD_GAINS,
    MultileadConfig,
    format_multilead,
    run_multilead,
)
from repro.experiments.noise_robustness import (
    NoiseRobustnessConfig,
    format_noise_robustness,
    run_noise_robustness,
)

TINY_GA = GeneticConfig(population_size=4, generations=2)


class TestMultilead:
    @pytest.fixture(scope="class")
    def results(self):
        # d = 600 needs a few more training beats than the other smoke
        # tests to keep the NFC initialization out of the degenerate
        # regime, hence the slightly larger scale.
        config = MultileadConfig(scale=0.04, seed=3, genetic=TINY_GA, scg_iterations=50)
        return run_multilead(config)

    def test_variants_present(self, results):
        assert set(results) == {"single", "multilead"}

    def test_dimensions(self, results):
        assert results["single"]["beat_length"] == 200
        assert results["multilead"]["beat_length"] == len(LEAD_GAINS) * 200

    def test_matrix_grows_with_leads(self, results):
        assert results["multilead"]["matrix_bytes"] == pytest.approx(
            len(LEAD_GAINS) * results["single"]["matrix_bytes"], rel=0.05
        )

    def test_both_meet_arr_target(self, results):
        assert results["single"]["arr"] >= 96.0
        assert results["multilead"]["arr"] >= 96.0

    def test_multilead_competitive(self, results):
        """Extra leads must not *hurt* (the shape claim of [18])."""
        assert results["multilead"]["ndr"] >= results["single"]["ndr"] - 6.0

    def test_format(self, results):
        text = format_multilead(results)
        assert "single" in text and "multilead" in text


class TestNoiseRobustness:
    @pytest.fixture(scope="class")
    def results(self):
        config = NoiseRobustnessConfig(
            scale=0.02,
            seed=3,
            genetic=TINY_GA,
            scg_iterations=50,
            snrs_db=(24.0, 6.0),
            kinds=("ma", "bw"),
        )
        return run_noise_robustness(config)

    def test_structure(self, results):
        assert "clean" in results
        assert set(results) == {"clean", "ma", "bw"}
        for kind in ("ma", "bw"):
            assert set(results[kind]) == {24.0, 6.0}

    def test_values_are_percentages(self, results):
        for kind in ("ma", "bw"):
            for value in results[kind].values():
                assert 0.0 <= value <= 100.0

    def test_degradation_monotone_in_snr(self, results):
        """Dirtier signal cannot help (allow small sampling noise)."""
        for kind in ("ma", "bw"):
            assert results[kind][6.0] <= results[kind][24.0] + 5.0

    def test_clean_is_best_or_close(self, results):
        clean = results["clean"][float("inf")]
        for kind in ("ma", "bw"):
            assert results[kind][24.0] <= clean + 5.0

    def test_format(self, results):
        text = format_noise_robustness(results)
        assert "clean NDR" in text and "ma" in text
