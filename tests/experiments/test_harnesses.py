"""Smoke + shape tests for the table/figure experiment harnesses.

These run the harnesses at a very small scale with reduced GA budgets.
They check the paper's *qualitative* claims; the benchmarks run the
same harnesses at larger scale and record quantitative outputs.
"""

import numpy as np
import pytest

from repro.core.genetic import GeneticConfig
from repro.experiments.energy import format_energy, run_energy
from repro.experiments.figure4 import format_figure4, run_figure4, run_figure4_errors
from repro.experiments.figure5 import (
    Figure5Config,
    figure5_summary,
    format_figure5,
    run_figure5,
)
from repro.experiments.table2 import Table2Config, format_table2, run_table2
from repro.experiments.table3 import (
    Table3Config,
    build_embedded_classifier,
    format_table3,
    run_table3,
)

TINY_GA = GeneticConfig(population_size=4, generations=2)


@pytest.fixture(scope="module")
def table3_artifacts():
    config = Table3Config(scale=0.02, seed=3, genetic=TINY_GA, scg_iterations=50)
    classifier, activation = build_embedded_classifier(config)
    return config, classifier, activation


class TestFigure4:
    def test_curves(self):
        curves = run_figure4()
        assert set(curves) == {"x", "gaussian", "linear", "triangular"}
        assert curves["gaussian"].shape == curves["x"].shape
        # All curves end at 1 (the center).
        for shape in ("gaussian", "linear", "triangular"):
            assert curves[shape][-1] == pytest.approx(1.0, abs=1e-6)

    def test_linear_tracks_gaussian_better(self):
        errors = run_figure4_errors()
        assert errors["linear"]["rms_error"] < errors["triangular"]["rms_error"]

    def test_format(self):
        text = format_figure4(run_figure4_errors())
        assert "linear" in text and "triangular" in text

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            run_figure4(sigma=0.0)


class TestTable2:
    @pytest.fixture(scope="class")
    def results(self):
        config = Table2Config(
            coefficients=(8,), scale=0.02, seed=3, genetic=TINY_GA, scg_iterations=50
        )
        return run_table2(config)

    def test_rows_present(self, results):
        assert set(results) == {8}
        for row in ("NDR-PC", "NDR-WBSN", "PCA-PC"):
            assert row in results[8]

    def test_values_are_percentages(self, results):
        for row in ("NDR-PC", "NDR-WBSN", "PCA-PC"):
            assert 0.0 <= results[8][row] <= 100.0

    def test_arr_targets_met(self, results):
        assert results[8]["ARR-PC"] >= 96.0
        assert results[8]["ARR-WBSN"] >= 96.0

    def test_classifiers_useful(self, results):
        """Paper claim: 'a small number of randomly-projected
        coefficients are sufficient to achieve a NDR of over 90%'."""
        assert results[8]["NDR-PC"] > 75.0  # slack for the tiny scale

    def test_format(self, results):
        text = format_table2(results)
        assert "NDR-PC" in text and "NDR-WBSN" in text and "PCA-PC" in text

    def test_paper_scale_config(self):
        config = Table2Config().paper_scale()
        assert config.scale == 1.0
        assert config.genetic.population_size == 20


class TestFigure5:
    @pytest.fixture(scope="class")
    def results(self):
        config = Figure5Config(scale=0.02, seed=3, genetic=TINY_GA, scg_iterations=50)
        return run_figure5(config)

    def test_all_shapes_present(self, results):
        assert set(results) == {"gaussian", "linear", "triangular"}

    def test_sweeps_monotone(self, results):
        for sweep in results.values():
            assert np.all(np.diff(sweep["ndr"]) <= 1e-12)
            assert np.all(np.diff(sweep["arr"]) >= -1e-12)

    def test_front_indices_valid(self, results):
        for sweep in results.values():
            front = sweep["front"]
            assert np.all(front >= 0)
            assert np.all(front < sweep["ndr"].size)

    def test_summary_and_format(self, results):
        summary = figure5_summary(results, arr_targets=(0.9,))
        text = format_figure5(summary)
        assert "gaussian" in text and "triangular" in text


class TestTable3:
    def test_rows_and_ordering(self, table3_artifacts):
        config, classifier, activation = table3_artifacts
        rows = run_table3(config, classifier, activation)
        assert set(rows) == {
            "rp_classifier",
            "subsystem1",
            "delineation",
            "proposed_system",
        }
        # Paper's qualitative structure.
        assert rows["rp_classifier"].duty_cycle < 0.01
        assert rows["rp_classifier"].duty_cycle < rows["subsystem1"].duty_cycle
        assert rows["subsystem1"].duty_cycle < rows["delineation"].duty_cycle
        assert rows["proposed_system"].duty_cycle < rows["delineation"].duty_cycle

    def test_code_sizes_additive(self, table3_artifacts):
        config, classifier, activation = table3_artifacts
        rows = run_table3(config, classifier, activation)
        assert rows["proposed_system"].code_size_kb == pytest.approx(
            rows["subsystem1"].code_size_kb + rows["delineation"].code_size_kb
        )

    def test_format(self, table3_artifacts):
        config, classifier, activation = table3_artifacts
        text = format_table3(run_table3(config, classifier, activation))
        assert "RP-classifier" in text
        assert "Proposed system (3)" in text


class TestEnergy:
    def test_savings_shape(self, table3_artifacts):
        config, _, _ = table3_artifacts
        result = run_energy(config)
        assert 0.3 < result.compute_saving < 0.9
        assert 0.3 < result.radio_saving < 0.9
        assert 0.05 < result.total_saving < 0.34
        assert result.gated_duty < result.baseline_duty
        assert result.gated_bytes < result.baseline_bytes

    def test_format(self, table3_artifacts):
        config, _, _ = table3_artifacts
        text = format_energy(run_energy(config))
        assert "wireless saving" in text

    def test_battery_outlook(self, table3_artifacts):
        from repro.experiments.energy import battery_outlook

        config, _, _ = table3_artifacts
        result = run_energy(config)
        outlook = battery_outlook(result)
        assert outlook["gated_days"] > outlook["baseline_days"]
        assert outlook["extension_factor"] == pytest.approx(
            1.0 / (1.0 - outlook["total_saving"]), rel=1e-6
        )
        # The battery-model path and the energy model agree on the
        # weighted total saving.
        assert outlook["total_saving"] == pytest.approx(result.total_saving, abs=1e-6)
