"""Tests for the batched multi-record / multi-stream serving layer."""

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.platform.node_sim import NodeSimulator
from repro.serving import FleetTrace, StreamResult, classify_streams, simulate_records


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=3), seed=s).synthesize(
            30.0, name=f"rec-{s}"
        )
        for s in (31, 32)
    ]


@pytest.fixture(scope="module")
def fleet(records, embedded_classifier):
    return simulate_records(NodeSimulator(embedded_classifier), records)


class TestSimulateRecords:
    def test_one_trace_per_record(self, fleet, records):
        assert len(fleet) == len(records)

    def test_aggregates_sum_over_traces(self, fleet):
        assert fleet.n_beats == sum(len(t) for t in fleet.traces)
        assert fleet.total_tx_bytes == sum(t.total_tx_bytes for t in fleet.traces)
        assert fleet.deadline_misses == sum(t.deadline_misses for t in fleet.traces)

    def test_matches_individual_process_record(self, fleet, records, embedded_classifier):
        solo = NodeSimulator(embedded_classifier).process_record(records[0])
        batch_events = fleet.traces[0].events
        assert len(solo) == len(batch_events)
        for a, b in zip(solo.events, batch_events):
            assert a.peak == b.peak
            assert a.flagged == b.flagged
            assert a.tx_bytes == b.tx_bytes
            assert a.total_cycles == pytest.approx(b.total_cycles)

    def test_worst_case_is_fleet_max(self, fleet):
        assert fleet.worst_case_utilization == max(
            t.worst_case_utilization for t in fleet.traces
        )

    def test_summary_mentions_fleet_numbers(self, fleet):
        text = fleet.summary()
        assert "records" in text and "deadline misses" in text

    def test_empty_fleet(self):
        fleet = FleetTrace([])
        assert fleet.n_beats == 0
        assert fleet.activation_rate == 0.0
        assert fleet.worst_case_utilization == 0.0
        assert fleet.mean_duty_cycle == 0.0


class TestClassifyStreams:
    def test_batched_equals_per_stream(self, records, embedded_classifier):
        """One fleet-wide classification pass reaches the same verdicts
        as classifying each stream alone."""
        streams = [r.lead(0) for r in records]
        fs = records[0].fs
        batched = classify_streams(embedded_classifier, streams, fs)
        for stream, result in zip(streams, batched):
            solo = classify_streams(embedded_classifier, [stream], fs)[0]
            np.testing.assert_array_equal(result.peaks, solo.peaks)
            np.testing.assert_array_equal(result.labels, solo.labels)

    def test_result_shapes(self, records, embedded_classifier):
        streams = [r.lead(0) for r in records]
        results = classify_streams(embedded_classifier, streams, records[0].fs)
        assert len(results) == len(streams)
        for result in results:
            assert result.peaks.size == result.labels.size == result.n_beats
            assert result.abnormal.dtype == bool
            assert result.n_beats > 20  # 30 s of ~77 bpm rhythm

    def test_finds_most_annotated_beats(self, records, embedded_classifier):
        record = records[0]
        result = classify_streams(embedded_classifier, [record.lead(0)], record.fs)[0]
        ann = record.annotation.samples
        missed = sum(1 for p in ann if np.min(np.abs(result.peaks - p)) > 18)
        assert missed <= max(1, int(0.1 * ann.size))

    def test_empty_and_flat_streams(self, embedded_classifier):
        results = classify_streams(
            embedded_classifier, [np.zeros(3600), np.empty(0)], 360.0
        )
        assert all(r.n_beats == 0 for r in results)

    def test_validation(self, embedded_classifier):
        with pytest.raises(ValueError):
            classify_streams(embedded_classifier, [np.zeros(10)], 0.0)
        with pytest.raises(ValueError):
            classify_streams(embedded_classifier, [np.zeros((5, 2))], 360.0)
