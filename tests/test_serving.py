"""Tests for the sharded multi-record / multi-stream serving layer."""

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.platform.node_sim import NodeSimulator
from repro.serving import (
    FleetTrace,
    ServingEngine,
    StreamResult,
    classify_streams,
    simulate_records,
)


class TestServingPackageSplit:
    """serving.py became the serving/ package; the public import
    surface must be unchanged for every pre-split caller."""

    def test_flat_imports_still_work(self):
        from repro.serving import (  # noqa: F401
            EXECUTORS,
            FleetTrace,
            ServingEngine,
            StreamResult,
            classify_streams,
            simulate_records,
        )

    def test_submodules_own_their_pieces(self):
        from repro.serving import engine, executors, gateway, results

        assert engine.ServingEngine is ServingEngine
        assert results.FleetTrace is FleetTrace
        assert results.StreamResult is StreamResult
        assert executors.EXECUTORS == ("serial", "threads", "processes")
        assert hasattr(gateway, "StreamGateway")


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=3), seed=s).synthesize(
            30.0, name=f"rec-{s}"
        )
        for s in (31, 32)
    ]


@pytest.fixture(scope="module")
def fleet(records, embedded_classifier):
    return simulate_records(NodeSimulator(embedded_classifier), records)


class TestSimulateRecords:
    def test_one_trace_per_record(self, fleet, records):
        assert len(fleet) == len(records)

    def test_aggregates_sum_over_traces(self, fleet):
        assert fleet.n_beats == sum(len(t) for t in fleet.traces)
        assert fleet.total_tx_bytes == sum(t.total_tx_bytes for t in fleet.traces)
        assert fleet.deadline_misses == sum(t.deadline_misses for t in fleet.traces)

    def test_matches_individual_process_record(self, fleet, records, embedded_classifier):
        solo = NodeSimulator(embedded_classifier).process_record(records[0])
        batch_events = fleet.traces[0].events
        assert len(solo) == len(batch_events)
        for a, b in zip(solo.events, batch_events):
            assert a.peak == b.peak
            assert a.flagged == b.flagged
            assert a.tx_bytes == b.tx_bytes
            assert a.total_cycles == pytest.approx(b.total_cycles)

    def test_worst_case_is_fleet_max(self, fleet):
        assert fleet.worst_case_utilization == max(
            t.worst_case_utilization for t in fleet.traces
        )

    def test_summary_mentions_fleet_numbers(self, fleet):
        text = fleet.summary()
        assert "records" in text and "deadline misses" in text

    def test_empty_fleet(self):
        fleet = FleetTrace([])
        assert fleet.n_beats == 0
        assert fleet.activation_rate == 0.0
        assert fleet.worst_case_utilization == 0.0
        assert fleet.mean_duty_cycle == 0.0


class TestClassifyStreams:
    def test_batched_equals_per_stream(self, records, embedded_classifier):
        """One fleet-wide classification pass reaches the same verdicts
        as classifying each stream alone."""
        streams = [r.lead(0) for r in records]
        fs = records[0].fs
        batched = classify_streams(embedded_classifier, streams, fs)
        for stream, result in zip(streams, batched):
            solo = classify_streams(embedded_classifier, [stream], fs)[0]
            np.testing.assert_array_equal(result.peaks, solo.peaks)
            np.testing.assert_array_equal(result.labels, solo.labels)

    def test_result_shapes(self, records, embedded_classifier):
        streams = [r.lead(0) for r in records]
        results = classify_streams(embedded_classifier, streams, records[0].fs)
        assert len(results) == len(streams)
        for result in results:
            assert result.peaks.size == result.labels.size == result.n_beats
            assert result.abnormal.dtype == bool
            assert result.n_beats > 20  # 30 s of ~77 bpm rhythm

    def test_finds_most_annotated_beats(self, records, embedded_classifier):
        record = records[0]
        result = classify_streams(embedded_classifier, [record.lead(0)], record.fs)[0]
        ann = record.annotation.samples
        missed = sum(1 for p in ann if np.min(np.abs(result.peaks - p)) > 18)
        assert missed <= max(1, int(0.1 * ann.size))

    def test_empty_and_flat_streams(self, embedded_classifier):
        results = classify_streams(
            embedded_classifier, [np.zeros(3600), np.empty(0)], 360.0
        )
        assert all(r.n_beats == 0 for r in results)

    def test_validation(self, embedded_classifier):
        with pytest.raises(ValueError):
            classify_streams(embedded_classifier, [np.zeros(10)], 0.0)
        with pytest.raises(ValueError):
            classify_streams(embedded_classifier, [np.zeros((5, 2))], 360.0)

    def test_non_positive_block_rejected(self, embedded_classifier):
        """block_s <= 0 must raise, not silently clamp to 1 sample."""
        for block_s in (0.0, -0.5):
            with pytest.raises(ValueError):
                classify_streams(embedded_classifier, [np.zeros(10)], 360.0, block_s=block_s)

    def test_invalid_decimation_rejected(self, embedded_classifier):
        with pytest.raises(ValueError):
            classify_streams(embedded_classifier, [np.zeros(10)], 360.0, decimation=0)


def assert_fleet_traces_identical(a: FleetTrace, b: FleetTrace) -> None:
    """Byte-identical fleet outcomes: every event of every trace equal."""
    assert len(a) == len(b)
    for trace_a, trace_b in zip(a.traces, b.traces):
        assert trace_a.duration_s == trace_b.duration_s
        assert trace_a.clock_hz == trace_b.clock_hz
        assert trace_a.events == trace_b.events


def assert_stream_results_identical(a: list, b: list) -> None:
    assert len(a) == len(b)
    for result_a, result_b in zip(a, b):
        np.testing.assert_array_equal(result_a.peaks, result_b.peaks)
        np.testing.assert_array_equal(result_a.labels, result_b.labels)


class TestServingEngine:
    """Executor/shard equivalence: results are byte-identical however
    the fleet is split and wherever the shards run."""

    @pytest.fixture(scope="class")
    def streams(self, records):
        return [r.lead(0) for r in records]

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_simulate_records_equivalent(
        self, executor, workers, records, embedded_classifier, fleet
    ):
        engine = ServingEngine(executor=executor, workers=workers)
        sharded = simulate_records(
            NodeSimulator(embedded_classifier), records, engine=engine
        )
        assert_fleet_traces_identical(fleet, sharded)

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_classify_streams_equivalent(
        self, executor, workers, streams, records, embedded_classifier
    ):
        baseline = classify_streams(embedded_classifier, streams, records[0].fs)
        engine = ServingEngine(executor=executor, workers=workers)
        sharded = classify_streams(
            embedded_classifier, streams, records[0].fs, engine=engine
        )
        assert_stream_results_identical(baseline, sharded)

    @pytest.mark.parametrize("shards", [1, 2, 4, 16])
    def test_shard_count_invariant(
        self, shards, streams, records, embedded_classifier, fleet
    ):
        engine = ServingEngine(executor="threads", workers=2, shards=shards)
        assert_fleet_traces_identical(
            fleet,
            simulate_records(NodeSimulator(embedded_classifier), records, engine=engine),
        )
        assert_stream_results_identical(
            classify_streams(embedded_classifier, streams, records[0].fs),
            classify_streams(embedded_classifier, streams, records[0].fs, engine=engine),
        )

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            ServingEngine(executor="fibers")
        with pytest.raises(ValueError):
            ServingEngine(workers=0)
        with pytest.raises(ValueError):
            ServingEngine(shards=0)

    def test_unknown_executor_error_names_allowed_values(self):
        """The error must teach the caller what IS accepted."""
        with pytest.raises(ValueError) as excinfo:
            ServingEngine(executor="fibers")
        message = str(excinfo.value)
        assert "fibers" in message
        for name in ("serial", "threads", "processes"):
            assert name in message

    @pytest.mark.parametrize("workers", [0, -1, -100])
    def test_invalid_workers_error_names_the_bound(self, workers):
        with pytest.raises(ValueError, match=r"workers must be >= 1"):
            ServingEngine(workers=workers)

    @pytest.mark.parametrize("shards", [0, -3])
    def test_invalid_shards_error_names_the_bound(self, shards):
        with pytest.raises(ValueError, match=r"shards must be >= 1"):
            ServingEngine(shards=shards)

    def test_empty_batches(self, embedded_classifier):
        engine = ServingEngine(executor="threads", workers=2)
        assert len(simulate_records(NodeSimulator(embedded_classifier), [], engine=engine)) == 0
        assert classify_streams(embedded_classifier, [], 360.0, engine=engine) == []

    def test_float_pipeline_through_process_pool(self, streams, records, embedded_pipeline):
        """Regression: a float pipeline whose fuzzy-value memo (a
        weakref) is populated must still pickle into process workers.

        Serial and process engines are compared at the *same* shard
        count: float matmul bitwise equality across batch sizes is a
        BLAS property the invariance guarantee does not claim.
        """
        d = embedded_pipeline.projection.matrix.shape[1]
        embedded_pipeline.predict(np.zeros((2, d)))  # populate the memo
        fs = records[0].fs
        serial = classify_streams(
            embedded_pipeline, streams, fs,
            engine=ServingEngine(executor="serial", shards=2),
        )
        sharded = classify_streams(
            embedded_pipeline, streams, fs,
            engine=ServingEngine(executor="processes", workers=2, shards=2),
        )
        assert_stream_results_identical(serial, sharded)
