"""Tests for the 2-bit packed projection matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.achlioptas import generate_achlioptas
from repro.fixedpoint.packed_matrix import PackedTernaryMatrix


class TestPackUnpack:
    def test_roundtrip(self):
        m = generate_achlioptas(8, 50, rng=0)
        packed = PackedTernaryMatrix.pack(m)
        np.testing.assert_array_equal(packed.unpack(), m.matrix)

    def test_roundtrip_non_multiple_of_four(self):
        m = generate_achlioptas(3, 13, rng=1)
        packed = PackedTernaryMatrix.pack(m)
        np.testing.assert_array_equal(packed.unpack(), m.matrix)

    def test_accepts_raw_array(self):
        raw = np.array([[1, 0, -1, 1], [0, 0, 0, -1]], dtype=np.int8)
        packed = PackedTernaryMatrix.pack(raw)
        np.testing.assert_array_equal(packed.unpack(), raw)

    def test_to_achlioptas(self):
        m = generate_achlioptas(4, 20, rng=2)
        recovered = PackedTernaryMatrix.pack(m).to_achlioptas()
        np.testing.assert_array_equal(recovered.matrix, m.matrix)

    def test_rejects_non_ternary(self):
        with pytest.raises(ValueError):
            PackedTernaryMatrix.pack(np.array([[2, 0]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            PackedTernaryMatrix.pack(np.array([1, 0, -1]))

    def test_corruption_detected(self):
        m = generate_achlioptas(2, 8, rng=3)
        packed = PackedTernaryMatrix.pack(m)
        corrupt = packed.data.copy()
        corrupt[0] |= 0b11  # invalid code in the first element
        bad = PackedTernaryMatrix(corrupt, packed.shape)
        with pytest.raises(ValueError, match="corrupt"):
            bad.unpack()

    def test_buffer_size_validated(self):
        with pytest.raises(ValueError):
            PackedTernaryMatrix(np.zeros(3, dtype=np.uint8), (2, 8))


class TestMemory:
    def test_paper_footprint_8x50(self):
        """8 x 50 at 2 bits = 104 bytes (13 bytes/row), ~1/4 of 400."""
        m = generate_achlioptas(8, 50, rng=0)
        packed = PackedTernaryMatrix.pack(m)
        assert packed.n_bytes == 8 * 13
        assert packed.n_bytes_unpacked == 400
        assert packed.compression_ratio > 3.8

    def test_exact_quarter_when_aligned(self):
        m = generate_achlioptas(8, 200, rng=0)
        packed = PackedTernaryMatrix.pack(m)
        assert packed.compression_ratio == 4.0

    def test_downsampling_shrinks_matrix(self):
        """Paper: 4x downsampling reduces the matrix by a factor 4."""
        m = generate_achlioptas(8, 200, rng=0)
        full = PackedTernaryMatrix.pack(m)
        small = PackedTernaryMatrix.pack(m.column_subsample(4))
        assert small.n_bytes <= full.n_bytes / 3.8


class TestProjection:
    def test_matches_unpacked_projection(self, rng):
        m = generate_achlioptas(8, 50, rng=4)
        packed = PackedTernaryMatrix.pack(m)
        v = rng.integers(-400, 400, size=(30, 50))
        np.testing.assert_array_equal(packed.project(v), m.project(v))

    def test_single_vector(self, rng):
        m = generate_achlioptas(8, 50, rng=4)
        packed = PackedTernaryMatrix.pack(m)
        v = rng.integers(-400, 400, size=50)
        assert packed.project(v).shape == (8,)

    def test_width_mismatch(self):
        packed = PackedTernaryMatrix.pack(generate_achlioptas(4, 10, rng=0))
        with pytest.raises(ValueError):
            packed.project(np.zeros(11, dtype=np.int64))

    def test_op_counting(self):
        from repro.platform.opcount import OpCounter

        m = generate_achlioptas(4, 16, rng=5)
        packed = PackedTernaryMatrix.pack(m)
        counter = OpCounter()
        packed.project(np.zeros((2, 16), dtype=np.int64), counter)
        assert counter["add"] == 2 * m.nnz
        assert counter["shift"] == 2 * 4 * 16


@settings(max_examples=40, deadline=None)
@given(
    matrix=hnp.arrays(
        np.int8,
        st.tuples(st.integers(1, 10), st.integers(1, 40)),
        elements=st.sampled_from([-1, 0, 1]),
    )
)
def test_roundtrip_property(matrix):
    """Property: pack/unpack is the identity on ternary matrices."""
    packed = PackedTernaryMatrix.pack(matrix)
    np.testing.assert_array_equal(packed.unpack(), matrix)
    assert packed.n_bytes == matrix.shape[0] * ((matrix.shape[1] + 3) // 4)


class TestDecodeCache:
    """The decode-once cache must be invisible except for speed."""

    def test_cache_reused_across_projections(self):
        m = generate_achlioptas(6, 40, rng=7)
        packed = PackedTernaryMatrix.pack(m)
        v = np.random.default_rng(0).integers(-100, 100, size=(3, 40))
        first = packed.project(v)
        cache = packed.__dict__["_decoded_cache"]
        second = packed.project(v)
        assert packed.__dict__["_decoded_cache"] is cache
        np.testing.assert_array_equal(first, second)

    def test_cache_matches_unpack(self):
        m = generate_achlioptas(5, 17, rng=8)
        packed = PackedTernaryMatrix.pack(m)
        packed.project(np.zeros((1, 17), dtype=np.int64))
        cache = packed.__dict__["_decoded_cache"]
        dense = packed.unpack()
        assert cache["nnz"] == int(np.count_nonzero(dense))
        np.testing.assert_array_equal(cache["t_i64"], dense.T)
        np.testing.assert_array_equal(cache["t_f64"], dense.T.astype(np.float64))

    def test_pickle_drops_cache(self):
        import pickle

        m = generate_achlioptas(4, 20, rng=9)
        packed = PackedTernaryMatrix.pack(m)
        v = np.random.default_rng(1).integers(-50, 50, size=(2, 20))
        before = packed.project(v)  # warm the cache
        assert "_decoded_cache" in packed.__dict__
        clone = pickle.loads(pickle.dumps(packed))
        # Only the 2-bit buffer ships; the clone re-decodes on demand.
        assert "_decoded_cache" not in clone.__dict__
        np.testing.assert_array_equal(clone.data, packed.data)
        np.testing.assert_array_equal(clone.project(v), before)
