"""Tests for float-to-embedded conversion."""

import numpy as np
import pytest

from repro.core.defuzz import UNKNOWN_LABEL
from repro.fixedpoint.convert import (
    EmbeddedClassifier,
    convert_pipeline,
    tune_embedded_alpha,
)


class TestConversion:
    def test_dimensions_preserved(self, embedded_pipeline):
        classifier = convert_pipeline(embedded_pipeline)
        assert classifier.n_coefficients == embedded_pipeline.projection.n_coefficients
        assert classifier.n_inputs == embedded_pipeline.projection.n_inputs

    def test_matrix_identical_after_packing(self, embedded_pipeline):
        classifier = convert_pipeline(embedded_pipeline)
        np.testing.assert_array_equal(
            classifier.matrix.unpack(), embedded_pipeline.projection.matrix
        )

    def test_alpha_carried_over(self, embedded_pipeline):
        classifier = convert_pipeline(embedded_pipeline)
        assert classifier.alpha_q16 == pytest.approx(
            embedded_pipeline.alpha * 65536, abs=1.0
        )

    def test_alpha_override(self, embedded_pipeline):
        classifier = convert_pipeline(embedded_pipeline, alpha=0.25)
        assert classifier.alpha_q16 == 16384

    def test_triangular_shape_option(self, embedded_pipeline):
        classifier = convert_pipeline(embedded_pipeline, shape="triangular")
        assert classifier.nfc.shape == "triangular"

    def test_invalid_shape_rejected(self, embedded_pipeline):
        with pytest.raises(ValueError):
            convert_pipeline(embedded_pipeline, shape="gaussian")


class TestEmbeddedInference:
    def test_predict_label_domain(self, embedded_classifier, embedded_datasets):
        _, _, test = embedded_datasets
        labels = embedded_classifier.predict(test.X[:200])
        assert set(np.unique(labels)).issubset({UNKNOWN_LABEL, 0, 1, 2})

    def test_integer_input_accepted(self, embedded_classifier, embedded_datasets):
        _, _, test = embedded_datasets
        as_int = embedded_classifier.quantize_beats(test.X[:50])
        labels_int = embedded_classifier.predict(as_int)
        labels_float = embedded_classifier.predict(test.X[:50])
        np.testing.assert_array_equal(labels_int, labels_float)

    def test_agreement_with_float_pipeline(
        self, embedded_classifier, embedded_pipeline, embedded_datasets
    ):
        """Quantization must not change most decisions (Table II gap is
        'a few percentage points')."""
        _, _, test = embedded_datasets
        float_linear = embedded_pipeline.with_shape("linear").with_alpha(
            embedded_classifier.alpha_q16 / 65536
        )
        float_labels = float_linear.predict(test.X)
        integer_labels = embedded_classifier.predict(test.X)
        agreement = np.mean(float_labels == integer_labels)
        assert agreement > 0.9

    def test_embedded_accuracy_close_to_float(
        self, embedded_classifier, embedded_pipeline, embedded_datasets
    ):
        _, _, test = embedded_datasets
        embedded_report = embedded_classifier.evaluate(test)
        float_report = embedded_pipeline.tuned_for(test, 0.97).evaluate(test)
        assert embedded_report.arr >= 0.95
        assert embedded_report.ndr >= float_report.ndr - 0.15

    def test_projection_is_integer(self, embedded_classifier, embedded_datasets):
        _, _, test = embedded_datasets
        u = embedded_classifier.project(test.X[:10])
        assert np.issubdtype(u.dtype, np.integer)

    def test_fuzzy_values_integer(self, embedded_classifier, embedded_datasets):
        _, _, test = embedded_datasets
        fuzzy = embedded_classifier.fuzzy_values(test.X[:10])
        assert np.issubdtype(fuzzy.dtype, np.integer)
        assert np.all(fuzzy >= 0)


class TestTuning:
    def test_tune_embedded_alpha_meets_target(
        self, embedded_classifier, embedded_datasets
    ):
        _, _, test = embedded_datasets
        report = embedded_classifier.evaluate(test)
        assert report.arr >= 0.97 - 1e-9

    def test_with_alpha(self, embedded_classifier):
        other = embedded_classifier.with_alpha(0.5)
        assert other.alpha_q16 == 32768
        with pytest.raises(ValueError):
            embedded_classifier.with_alpha(1.5)

    def test_higher_alpha_flags_more(self, embedded_classifier, embedded_datasets):
        _, _, test = embedded_datasets
        low = embedded_classifier.with_alpha(0.0).evaluate(test)
        high = embedded_classifier.with_alpha(0.8).evaluate(test)
        assert high.activation >= low.activation - 1e-12


class TestMemoryReport:
    def test_components_and_total(self, embedded_classifier):
        report = embedded_classifier.memory_report()
        expected_keys = {
            "projection_matrix",
            "projection_matrix_unpacked",
            "nfc_parameters",
            "beat_buffer",
            "work_buffers",
            "total",
        }
        assert expected_keys == set(report)
        assert report["total"] == (
            report["projection_matrix"]
            + report["nfc_parameters"]
            + report["beat_buffer"]
            + report["work_buffers"]
        )

    def test_paper_scale_footprint(self, embedded_classifier):
        """The classifier's data must be far under 2 KB (Table III row 1
        plus data is ~2 KB total)."""
        report = embedded_classifier.memory_report()
        assert report["total"] < 2048

    def test_packing_saves_4x(self, embedded_classifier):
        report = embedded_classifier.memory_report()
        assert report["projection_matrix_unpacked"] >= 3.8 * report["projection_matrix"]


class TestOpCounts:
    def test_beat_op_counts_positive(self, embedded_classifier):
        counts = embedded_classifier.beat_op_counts()
        assert counts["add"] > 0
        assert counts["mul"] > 0
        # The projection dominates the loads.
        assert counts["load"] > embedded_classifier.n_inputs

    def test_counts_scale_with_k(self, embedded_pipeline, embedded_datasets):
        classifier = convert_pipeline(embedded_pipeline)
        counts = classifier.beat_op_counts()
        assert counts["mul"] >= classifier.n_coefficients * 3
