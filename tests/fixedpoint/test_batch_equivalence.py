"""Batched fixed-point inference must match the per-beat serial path.

The batch implementations (``block_fuzzify``, ``IntegerNFC.fuzzy_values``,
``EmbeddedClassifier.predict``) are the hot path; the ``*_serial``
companions run the same code one beat at a time and exist as the
bit-exactness reference.  Labels AND charged op counts must agree for
every Q-format / MF shape and for the edge shapes n=0, n=1 and L=1.
"""

import numpy as np
import pytest

from repro.fixedpoint.integer_nfc import (
    IntegerNFC,
    block_fuzzify,
    block_fuzzify_serial,
)
from repro.fixedpoint.linearize import GRADE_MAX, linearize_mf
from repro.platform.opcount import OpCounter


def _nfc(k=4, L=3, shape="linear", seed=5):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 500, size=(k, L))
    sigmas = 50 + 200 * rng.random((k, L))
    c, s, si, so = linearize_mf(centers, sigmas, 1.0)
    return IntegerNFC(c, s, si, so, shape=shape)


def _counts(counter):
    return dict(counter.counts)


class TestBlockFuzzifySerial:
    @pytest.mark.parametrize("n,k,L", [(1, 4, 3), (7, 8, 3), (50, 16, 2)])
    def test_matches_batch(self, n, k, L):
        rng = np.random.default_rng(n * 31 + k)
        grades = rng.integers(0, GRADE_MAX + 1, size=(n, k, L))
        batch_counter, serial_counter = OpCounter(), OpCounter()
        batch = block_fuzzify(grades, batch_counter)
        serial = block_fuzzify_serial(grades, serial_counter)
        np.testing.assert_array_equal(batch, serial)
        assert _counts(batch_counter) == _counts(serial_counter)

    def test_empty_batch(self):
        grades = np.empty((0, 8, 3), dtype=np.int64)
        batch_counter, serial_counter = OpCounter(), OpCounter()
        batch = block_fuzzify(grades, batch_counter)
        serial = block_fuzzify_serial(grades, serial_counter)
        assert batch.shape == serial.shape == (0, 3)
        assert _counts(batch_counter) == _counts(serial_counter)

    def test_single_class(self):
        rng = np.random.default_rng(3)
        grades = rng.integers(0, GRADE_MAX + 1, size=(5, 6, 1))
        np.testing.assert_array_equal(
            block_fuzzify(grades), block_fuzzify_serial(grades)
        )

    def test_serial_validation(self):
        with pytest.raises(ValueError):
            block_fuzzify_serial(np.zeros((2, 3), dtype=np.int64))


class TestFuzzyValuesSerial:
    @pytest.mark.parametrize("shape", ["linear", "triangular"])
    @pytest.mark.parametrize("n", [1, 2, 25])
    def test_matches_batch(self, shape, n):
        nfc = _nfc(shape=shape)
        U = np.random.default_rng(n).integers(-2000, 2000, size=(n, 4))
        batch_counter, serial_counter = OpCounter(), OpCounter()
        batch = nfc.fuzzy_values(U, batch_counter)
        serial = nfc.fuzzy_values_serial(U, serial_counter)
        np.testing.assert_array_equal(batch, serial)
        assert _counts(batch_counter) == _counts(serial_counter)

    def test_empty_batch(self):
        nfc = _nfc()
        U = np.empty((0, 4), dtype=np.int64)
        batch_counter, serial_counter = OpCounter(), OpCounter()
        batch = nfc.fuzzy_values(U, batch_counter)
        serial = nfc.fuzzy_values_serial(U, serial_counter)
        assert batch.shape == serial.shape == (0, 3)
        assert _counts(batch_counter) == _counts(serial_counter)

    def test_single_class(self):
        nfc = _nfc(L=1)
        U = np.random.default_rng(9).integers(-1000, 1000, size=(6, 4))
        np.testing.assert_array_equal(
            nfc.fuzzy_values(U), nfc.fuzzy_values_serial(U)
        )

    def test_serial_validation(self):
        nfc = _nfc()
        with pytest.raises(ValueError):
            nfc.fuzzy_values_serial(np.zeros((2, 2, 4), dtype=np.int64))


class TestPredictSerial:
    def test_matches_batch(self, embedded_classifier, embedded_datasets):
        _, _, test = embedded_datasets
        X = test.X[:64]
        batch_counter, serial_counter = OpCounter(), OpCounter()
        batch = embedded_classifier.predict(X, batch_counter)
        serial = embedded_classifier.predict_serial(X, serial_counter)
        np.testing.assert_array_equal(batch, serial)
        assert _counts(batch_counter) == _counts(serial_counter)

    def test_single_beat(self, embedded_classifier, embedded_datasets):
        _, _, test = embedded_datasets
        np.testing.assert_array_equal(
            embedded_classifier.predict(test.X[:1]),
            embedded_classifier.predict_serial(test.X[:1]),
        )

    def test_empty_batch(self, embedded_classifier, embedded_datasets):
        _, _, test = embedded_datasets
        X = np.empty((0, test.X.shape[1]))
        labels = embedded_classifier.predict_serial(X)
        assert labels.shape == (0,)
        np.testing.assert_array_equal(labels, embedded_classifier.predict(X))

    def test_across_fixed_point_formats(
        self, embedded_classifier, embedded_datasets
    ):
        """Bit-exact whatever the alpha Q0.16 value or ADC grid."""
        from dataclasses import replace

        _, _, test = embedded_datasets
        X = test.X[:32]
        for alpha_q16, gain_factor in ((0, 1.0), (1 << 15, 0.5), (1 << 16, 2.0)):
            clf = replace(
                embedded_classifier,
                alpha_q16=alpha_q16,
                adc_gain=embedded_classifier.adc_gain * gain_factor,
            )
            np.testing.assert_array_equal(clf.predict(X), clf.predict_serial(X))
