"""Tests for integer fuzzification and division-free defuzzification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.defuzz import UNKNOWN_LABEL, defuzzify
from repro.fixedpoint.integer_nfc import (
    IntegerNFC,
    block_fuzzify,
    integer_defuzzify,
)
from repro.fixedpoint.linearize import GRADE_MAX
from repro.platform.opcount import OpCounter


class TestBlockFuzzify:
    def test_single_coefficient_passthrough(self):
        grades = np.array([[[100, 200, 300]]])
        out = block_fuzzify(grades)
        np.testing.assert_array_equal(out, [[100, 200, 300]])

    def test_ratios_preserved(self):
        """The shared shift must preserve class ratios to ~1 LSB/step."""
        rng = np.random.default_rng(0)
        n, k, L = 50, 8, 3
        grades = rng.integers(1000, GRADE_MAX, size=(n, k, L))
        out = block_fuzzify(grades).astype(float)
        exact = np.prod(grades.astype(float) / GRADE_MAX, axis=1)
        for i in range(n):
            ratio_exact = exact[i] / exact[i].max()
            ratio_int = out[i] / out[i].max()
            np.testing.assert_allclose(ratio_int, ratio_exact, rtol=0.02, atol=0.01)

    def test_result_fits_32_bits(self):
        rng = np.random.default_rng(1)
        grades = rng.integers(0, GRADE_MAX + 1, size=(100, 16, 3))
        out = block_fuzzify(grades)
        assert np.all(out >= 0)
        assert np.all(out < 2**32)

    def test_all_zero_column_stays_zero(self):
        grades = np.full((1, 4, 3), 1000, dtype=np.int64)
        grades[0, 2, 1] = 0  # class 1 collapses
        out = block_fuzzify(grades)
        assert out[0, 1] == 0
        assert out[0, 0] > 0

    def test_all_classes_zero(self):
        grades = np.zeros((1, 4, 3), dtype=np.int64)
        out = block_fuzzify(grades)
        np.testing.assert_array_equal(out[0], 0)

    def test_argmax_preserved(self):
        """Winner under exact products == winner under block fuzzify."""
        rng = np.random.default_rng(2)
        grades = rng.integers(2000, GRADE_MAX, size=(200, 8, 3))
        out = block_fuzzify(grades)
        exact = np.sum(np.log(grades.astype(float)), axis=1)
        np.testing.assert_array_equal(out.argmax(axis=1), exact.argmax(axis=1))

    def test_validation(self):
        with pytest.raises(ValueError):
            block_fuzzify(np.zeros((2, 3)))  # not 3-D
        with pytest.raises(ValueError):
            block_fuzzify(np.full((1, 2, 3), GRADE_MAX + 1))
        with pytest.raises(ValueError):
            block_fuzzify(np.full((1, 2, 3), -1))

    def test_op_counting(self):
        counter = OpCounter()
        grades = np.full((4, 8, 3), 30000, dtype=np.int64)
        block_fuzzify(grades, counter)
        assert counter["mul"] == 4 * 7 * 3


class TestIntegerDefuzzify:
    def test_alpha_zero_argmax(self):
        fuzzy = np.array([[100, 300, 200], [500, 100, 100]])
        np.testing.assert_array_equal(integer_defuzzify(fuzzy, 0), [1, 0])

    def test_all_zero_is_unknown(self):
        assert integer_defuzzify(np.array([[0, 0, 0]]), 0)[0] == UNKNOWN_LABEL

    def test_matches_float_rule(self):
        """The Q16 comparison equals the float (M1-M2) >= alpha*S rule."""
        rng = np.random.default_rng(3)
        fuzzy = rng.integers(0, 60000, size=(500, 3))
        for alpha in (0.0, 0.1, 0.5, 0.9):
            alpha_q16 = int(round(alpha * 65536))
            integer_labels = integer_defuzzify(fuzzy, alpha_q16)
            float_labels = defuzzify(fuzzy.astype(float), alpha)
            # Ties at the exact threshold may differ by quantization of
            # alpha; allow a tiny disagreement rate.
            agreement = np.mean(integer_labels == float_labels)
            assert agreement > 0.995

    def test_confidence_threshold(self):
        # margin = (600 - 300) / 1000 = 0.3
        fuzzy = np.array([[600, 300, 100]])
        below = int(0.29 * 65536)
        above = int(0.31 * 65536)
        assert integer_defuzzify(fuzzy, below)[0] == 0
        assert integer_defuzzify(fuzzy, above)[0] == UNKNOWN_LABEL

    def test_validation(self):
        with pytest.raises(ValueError):
            integer_defuzzify(np.array([[1, 2]]), -1)
        with pytest.raises(ValueError):
            integer_defuzzify(np.array([[1, 2]]), 1 << 17)
        with pytest.raises(ValueError):
            integer_defuzzify(np.array([[-1, 2]]), 0)
        with pytest.raises(ValueError):
            integer_defuzzify(np.array([1, 2]), 0)


class TestIntegerNFC:
    def _nfc(self, k=4, L=3, shape="linear"):
        rng = np.random.default_rng(5)
        from repro.fixedpoint.linearize import linearize_mf

        centers = rng.normal(0, 500, size=(k, L))
        sigmas = 50 + 200 * rng.random((k, L))
        c, s, si, so = linearize_mf(centers, sigmas, 1.0)
        return IntegerNFC(c, s, si, so, shape=shape)

    def test_grades_shape_and_range(self):
        nfc = self._nfc()
        U = np.random.default_rng(0).integers(-2000, 2000, size=(10, 4))
        grades = nfc.membership_grades(U)
        assert grades.shape == (10, 4, 3)
        assert np.all(grades >= 0) and np.all(grades <= GRADE_MAX)

    def test_triangular_shape(self):
        nfc = self._nfc(shape="triangular")
        U = np.zeros((2, 4), dtype=np.int64)
        grades = nfc.membership_grades(U)
        assert grades.shape == (2, 4, 3)

    def test_fuzzy_values(self):
        nfc = self._nfc()
        U = np.random.default_rng(1).integers(-1000, 1000, size=(6, 4))
        fuzzy = nfc.fuzzy_values(U)
        assert fuzzy.shape == (6, 3)
        assert np.all(fuzzy >= 0)

    def test_memory_bytes(self):
        nfc = self._nfc(k=8, L=3)
        assert nfc.memory_bytes() == 12 * 8 * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            IntegerNFC(
                np.zeros((2, 3)), np.zeros((2, 3)), np.ones((2, 3)), np.ones((2, 3))
            )  # s < 1
        with pytest.raises(ValueError):
            IntegerNFC(
                np.zeros((2, 3)), np.ones((2, 3)), np.ones((2, 3)), np.ones((3, 2))
            )
        with pytest.raises(ValueError):
            IntegerNFC(
                np.zeros((2, 3)),
                np.ones((2, 3)),
                np.ones((2, 3)),
                np.ones((2, 3)),
                shape="gaussian",
            )

    def test_wrong_input_width(self):
        nfc = self._nfc(k=4)
        with pytest.raises(ValueError):
            nfc.fuzzy_values(np.zeros((2, 5), dtype=np.int64))

    def test_op_counting_membership(self):
        nfc = self._nfc(k=4, L=3)
        counter = OpCounter()
        nfc.membership_grades(np.zeros((2, 4), dtype=np.int64), counter)
        assert counter["mul"] == 2 * 4 * 3
        assert counter["abs"] == 2 * 4 * 3


@settings(max_examples=30, deadline=None)
@given(
    grades=hnp.arrays(
        np.int64,
        st.tuples(st.integers(1, 20), st.integers(1, 12), st.just(3)),
        elements=st.integers(0, GRADE_MAX),
    )
)
def test_block_fuzzify_32bit_envelope(grades):
    """Property: every output respects the 32-bit hardware envelope."""
    out = block_fuzzify(grades)
    assert np.all(out >= 0)
    assert np.all(out < 2**32)


@settings(max_examples=30, deadline=None)
@given(
    fuzzy=hnp.arrays(
        np.int64,
        st.tuples(st.integers(1, 30), st.just(3)),
        elements=st.integers(0, 2**31),
    ),
    alpha_q16=st.integers(0, 1 << 16),
)
def test_integer_defuzzify_label_domain(fuzzy, alpha_q16):
    """Property: labels are a class index or Unknown, never else."""
    labels = integer_defuzzify(fuzzy, alpha_q16)
    assert set(np.unique(labels)).issubset({UNKNOWN_LABEL, 0, 1, 2})
