"""Tests for the integer 4-segment and triangular membership functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.membership import linearized_membership, triangular_membership
from repro.fixedpoint.linearize import (
    GRADE_AT_S,
    GRADE_MAX,
    LinearizedMF,
    evaluate_linearized,
    evaluate_triangular,
    linearize_mf,
)


def make_mf(center=0.0, sigma=10.0, scale=1.0):
    return LinearizedMF.from_float(center, sigma, scale)


class TestLinearizedMF:
    def test_peak_value(self):
        mf = make_mf()
        assert mf.evaluate(np.array([0]))[0] == GRADE_MAX

    def test_value_at_S(self):
        mf = make_mf(sigma=100.0)
        grade = mf.evaluate(np.array([mf.s]))[0]
        assert abs(int(grade) - GRADE_AT_S) <= 1

    def test_floor_region(self):
        mf = make_mf(sigma=100.0)
        for r in (2 * mf.s, 3 * mf.s, 4 * mf.s - 1):
            assert mf.evaluate(np.array([r]))[0] == 1

    def test_zero_beyond_4S(self):
        mf = make_mf(sigma=100.0)
        assert mf.evaluate(np.array([4 * mf.s]))[0] <= 1
        assert mf.evaluate(np.array([10 * mf.s]))[0] <= 1

    def test_monotone_decreasing(self):
        mf = make_mf(sigma=50.0)
        xs = np.arange(0, 5 * mf.s)
        grades = mf.evaluate(xs)
        assert np.all(np.diff(grades) <= 0)

    def test_symmetric(self):
        mf = make_mf(center=1000.0, sigma=40.0)
        left = mf.evaluate(np.array([1000 - 37]))[0]
        right = mf.evaluate(np.array([1000 + 37]))[0]
        assert int(left) == int(right)

    def test_matches_float_model(self):
        """Integer MF tracks the float linearized MF within ~2 LSB."""
        sigma = 80.0
        mf = make_mf(sigma=sigma)
        xs = np.arange(-4 * mf.s, 4 * mf.s, 7)
        integer = mf.evaluate(xs).astype(float) / GRADE_MAX
        float_ref = linearized_membership(
            xs.astype(float)[:, np.newaxis], np.zeros((1, 1)), np.full((1, 1), sigma)
        )[:, 0, 0]
        assert np.max(np.abs(integer - float_ref)) < 0.01

    def test_s_floor_at_one(self):
        mf = LinearizedMF.from_float(0.0, 1e-9, 1.0)
        assert mf.s == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LinearizedMF.from_float(0.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            LinearizedMF.from_float(0.0, 1.0, 0.0)

    def test_scale_applied_to_center(self):
        mf = LinearizedMF.from_float(1.5, 1.0, 200.0)
        assert mf.center == 300


class TestTriangular:
    def test_peak_and_zero(self):
        s = np.array([100])
        assert evaluate_triangular(np.array([0]), np.array([0]), s)[0] == GRADE_MAX
        assert evaluate_triangular(np.array([200]), np.array([0]), s)[0] == 0

    def test_midpoint_half(self):
        s = np.array([100])
        grade = evaluate_triangular(np.array([100]), np.array([0]), s)[0]
        assert abs(int(grade) - GRADE_MAX // 2) <= 2

    def test_matches_float_model(self):
        sigma = 80.0
        scale = 1.0
        s = max(1, int(round(2.35 * sigma * scale)))
        xs = np.arange(-3 * s, 3 * s, 5)
        integer = evaluate_triangular(xs, np.array([0]), np.array([s])).astype(float)
        float_ref = triangular_membership(
            xs.astype(float)[:, np.newaxis], np.zeros((1, 1)), np.full((1, 1), sigma)
        )[:, 0, 0]
        assert np.max(np.abs(integer / GRADE_MAX - float_ref)) < 0.01

    def test_invalid_s(self):
        with pytest.raises(ValueError):
            evaluate_triangular(np.array([0]), np.array([0]), np.array([0]))


class TestLinearizeArrays:
    def test_shapes(self):
        centers = np.zeros((8, 3))
        sigmas = np.ones((8, 3))
        c, s, si, so = linearize_mf(centers, sigmas, 200.0)
        assert c.shape == s.shape == si.shape == so.shape == (8, 3)
        assert np.all(s >= 1)
        assert np.all(si > 0) and np.all(so > 0)

    def test_matches_scalar_path(self):
        centers = np.array([[0.5]])
        sigmas = np.array([[0.2]])
        c, s, si, so = linearize_mf(centers, sigmas, 200.0)
        scalar = LinearizedMF.from_float(0.5, 0.2, 200.0)
        assert c[0, 0] == scalar.center
        assert s[0, 0] == scalar.s
        assert si[0, 0] == scalar.slope_inner_q16
        assert so[0, 0] == scalar.slope_outer_q16

    def test_vectorized_evaluation_matches_scalar(self, rng):
        centers = rng.normal(0, 2, size=(4, 3))
        sigmas = 0.5 + rng.random((4, 3))
        c, s, si, so = linearize_mf(centers, sigmas, 200.0)
        x = rng.integers(-2000, 2000, size=(10, 4))
        grades = evaluate_linearized(
            x[:, :, np.newaxis], c[np.newaxis], s[np.newaxis],
            si[np.newaxis], so[np.newaxis],
        )
        for k in range(4):
            for l in range(3):
                mf = LinearizedMF(int(c[k, l]), int(s[k, l]), int(si[k, l]), int(so[k, l]))
                np.testing.assert_array_equal(grades[:, k, l], mf.evaluate(x[:, k]))

    def test_validation(self):
        with pytest.raises(ValueError):
            linearize_mf(np.zeros((2, 2)), np.ones((2, 3)), 1.0)
        with pytest.raises(ValueError):
            linearize_mf(np.zeros((2, 2)), np.zeros((2, 2)), 1.0)
        with pytest.raises(ValueError):
            linearize_mf(np.zeros((2, 2)), np.ones((2, 2)), -1.0)


@settings(max_examples=50, deadline=None)
@given(
    x=st.integers(-(10**6), 10**6),
    center=st.integers(-(10**5), 10**5),
    sigma=st.floats(0.01, 100.0),
)
def test_grades_always_in_range(x, center, sigma):
    """Property: integer grades stay within [0, GRADE_MAX]."""
    mf = LinearizedMF.from_float(float(center), sigma, 1.0)
    grade = int(mf.evaluate(np.array([x]))[0])
    assert 0 <= grade <= GRADE_MAX


@settings(max_examples=50, deadline=None)
@given(sigma=st.floats(0.5, 50.0), scale=st.floats(1.0, 500.0))
def test_intermediates_fit_hardware_registers(sigma, scale):
    """Property: clamped r times slope fits the 48-bit MAC envelope."""
    mf = LinearizedMF.from_float(0.0, sigma, scale)
    r_max = 4 * mf.s
    assert r_max * mf.slope_inner_q16 < 2**48


def _linearized_reference(x, center, s, slope_inner_q16, slope_outer_q16):
    """Per-element python transcription of the 4-segment MF spec."""
    from repro.fixedpoint.linearize import SLOPE_FRAC_BITS

    r = min(abs(int(x) - int(center)), 4 * int(s))
    if r < s:
        grade = GRADE_MAX - ((r * int(slope_inner_q16)) >> SLOPE_FRAC_BITS)
    elif r < 2 * s:
        grade = GRADE_AT_S - (((r - int(s)) * int(slope_outer_q16)) >> SLOPE_FRAC_BITS)
    elif r < 4 * s:
        grade = 1
    else:
        grade = 0
    return max(0, min(grade, GRADE_MAX))


def test_evaluate_linearized_matches_scalar_reference():
    """The where-arithmetic batch kernel == the branchy per-element spec."""
    rng = np.random.default_rng(12)
    centers = rng.integers(-500, 500, size=8)
    sigmas = rng.integers(20, 300, size=8)
    mfs = [LinearizedMF.from_float(float(c), float(s), 1.0) for c, s in zip(centers, sigmas)]
    xs = rng.integers(-3000, 3000, size=200)
    for mf in mfs:
        batch = evaluate_linearized(
            xs, mf.center, mf.s, mf.slope_inner_q16, mf.slope_outer_q16
        )
        expected = [
            _linearized_reference(
                x, mf.center, mf.s, mf.slope_inner_q16, mf.slope_outer_q16
            )
            for x in xs
        ]
        np.testing.assert_array_equal(batch, expected)


def test_evaluate_linearized_segment_boundaries():
    """Exact values at r = 0, S, 2S, 4S-1, 4S and far outliers."""
    mf = LinearizedMF.from_float(0.0, 25.0, 1.0)
    s = int(mf.s)
    points = np.array([0, s - 1, s, 2 * s - 1, 2 * s, 4 * s - 1, 4 * s, 10 * s])
    batch = evaluate_linearized(
        points, mf.center, mf.s, mf.slope_inner_q16, mf.slope_outer_q16
    )
    expected = [
        _linearized_reference(
            x, mf.center, mf.s, mf.slope_inner_q16, mf.slope_outer_q16
        )
        for x in points
    ]
    np.testing.assert_array_equal(batch, expected)
    assert batch[0] == GRADE_MAX
    assert batch[-2] == 1 or batch[-2] == 0  # r = 4S clamps to the floor segment
    assert batch[-1] == 0
