"""Tests for C header generation."""

import numpy as np
import pytest

from repro.fixedpoint.codegen import GUARD, generate_c_header, parse_c_header


@pytest.fixture(scope="module")
def header(embedded_classifier):
    return generate_c_header(embedded_classifier)


class TestHeaderStructure:
    def test_include_guard(self, header):
        assert f"#ifndef {GUARD}" in header
        assert f"#endif /* {GUARD} */" in header

    def test_dimension_macros(self, header, embedded_classifier):
        parsed = parse_c_header(header)
        assert parsed.macros["RP_CLASSIFIER_N_COEFFICIENTS"] == (
            embedded_classifier.n_coefficients
        )
        assert parsed.macros["RP_CLASSIFIER_N_INPUTS"] == embedded_classifier.n_inputs
        assert parsed.macros["RP_CLASSIFIER_N_CLASSES"] == 3

    def test_alpha_macro(self, header, embedded_classifier):
        parsed = parse_c_header(header)
        assert parsed.macros["RP_CLASSIFIER_ALPHA_Q16"] == embedded_classifier.alpha_q16

    def test_stdint_included(self, header):
        assert "#include <stdint.h>" in header

    def test_reference_implementation_present(self, header):
        assert "rp_classifier_classify" in header
        assert "rp_classifier_project" in header


class TestRoundTrip:
    def test_matrix_bytes(self, header, embedded_classifier):
        parsed = parse_c_header(header)
        np.testing.assert_array_equal(
            parsed.arrays["rp_classifier_matrix"], embedded_classifier.matrix.data
        )

    def test_mf_tables(self, header, embedded_classifier):
        parsed = parse_c_header(header)
        k, L = embedded_classifier.nfc.centers.shape
        np.testing.assert_array_equal(
            parsed.arrays["rp_classifier_mf_center"].reshape(k, L),
            embedded_classifier.nfc.centers,
        )
        np.testing.assert_array_equal(
            parsed.arrays["rp_classifier_mf_s"].reshape(k, L),
            embedded_classifier.nfc.s_values,
        )
        np.testing.assert_array_equal(
            parsed.arrays["rp_classifier_mf_slope_inner_q16"].reshape(k, L),
            embedded_classifier.nfc.slope_inner_q16,
        )

    def test_tables_fit_declared_c_types(self, header, embedded_classifier):
        nfc = embedded_classifier.nfc
        assert np.all(np.abs(nfc.centers) < 2**15)
        assert np.all(nfc.s_values < 2**15)
        assert np.all(nfc.slope_inner_q16 < 2**31)


class TestValidation:
    def test_rejects_bad_identifier(self, embedded_classifier):
        with pytest.raises(ValueError):
            generate_c_header(embedded_classifier, name="9bad")
        with pytest.raises(ValueError):
            generate_c_header(embedded_classifier, name="Upper")

    def test_custom_name_used(self, embedded_classifier):
        header = generate_c_header(embedded_classifier, name="ecg_node")
        assert "ECG_NODE_N_COEFFICIENTS" in header
        assert "ecg_node_matrix" in header

    def test_parse_detects_truncated_array(self):
        bad = "static const uint8_t x[4] = {\n    1, 2, 3,\n};"
        with pytest.raises(ValueError, match="declared 4"):
            parse_c_header(bad)
