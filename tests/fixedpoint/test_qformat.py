"""Tests for fixed-point helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint.qformat import (
    fits,
    float_to_q,
    ilog2,
    q_to_float,
    quantize,
    saturate,
)


class TestQuantize:
    def test_rounding(self):
        np.testing.assert_array_equal(
            quantize(np.array([0.4, 0.5, 1.26]), 10.0), [4, 5, 13]
        )

    def test_negative_values(self):
        np.testing.assert_array_equal(quantize(np.array([-1.04]), 100.0), [-104])

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(2), 0.0)

    def test_dtype(self):
        assert quantize(np.array([1.0]), 2.0).dtype == np.int64


class TestSaturate:
    def test_signed_16(self):
        values = np.array([-40000, -32768, 0, 32767, 40000])
        np.testing.assert_array_equal(
            saturate(values, 16), [-32768, -32768, 0, 32767, 32767]
        )

    def test_unsigned_16(self):
        values = np.array([-5, 0, 65535, 70000])
        np.testing.assert_array_equal(
            saturate(values, 16, signed=False), [0, 0, 65535, 65535]
        )

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            saturate(np.zeros(1), 0)


class TestFits:
    def test_inside(self):
        assert fits(np.array([-32768, 32767]), 16)

    def test_outside(self):
        assert not fits(np.array([32768]), 16)

    def test_unsigned(self):
        assert fits(np.array([65535]), 16, signed=False)
        assert not fits(np.array([-1]), 16, signed=False)


class TestIlog2:
    def test_exact_powers(self):
        values = np.array([1, 2, 4, 1024, 2**31])
        np.testing.assert_array_equal(ilog2(values), [0, 1, 2, 10, 31])

    def test_between_powers(self):
        np.testing.assert_array_equal(ilog2(np.array([3, 5, 1023])), [1, 2, 9])

    def test_zero_maps_to_minus_one(self):
        assert ilog2(np.array([0]))[0] == -1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ilog2(np.array([-1]))


class TestQConversions:
    def test_roundtrip(self):
        q = float_to_q(0.625, 16)
        assert q == 40960
        assert q_to_float(q, 16) == pytest.approx(0.625)

    def test_zero_frac_bits(self):
        assert float_to_q(3.6, 0) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            float_to_q(1.0, -1)
        with pytest.raises(ValueError):
            q_to_float(1, -1)


@settings(max_examples=100, deadline=None)
@given(v=st.integers(1, 2**62))
def test_ilog2_definition(v):
    """Property: 2^ilog2(v) <= v < 2^(ilog2(v) + 1)."""
    e = int(ilog2(np.array([v]))[0])
    assert (1 << e) <= v < (1 << (e + 1))


@settings(max_examples=50, deadline=None)
@given(x=st.floats(-2.0, 2.0), frac=st.integers(0, 24))
def test_q_roundtrip_error_bounded(x, frac):
    """Property: Q encode/decode error is at most half an LSB."""
    q = float_to_q(x, frac)
    assert abs(q_to_float(q, frac) - x) <= 0.5 / (1 << frac) + 1e-15
