"""StreamingNode: the incremental gated node vs the record-scale path.

Over a completed stream the node's events must be bit-exact with
running the same stages at record scale — streaming front end (the
pair ``classify_streams`` uses), one batched classification, per-beat
multi-lead delineation of flagged beats with the previous kept peak as
guard — and invariant to how the stream is chunked.
"""

import pickle

import numpy as np
import pytest

from repro.core.defuzz import is_abnormal
from repro.dsp.delineation import delineate_multilead
from repro.dsp.morphological import filter_lead
from repro.dsp.streaming import NodeSnapshot, StreamingNode, StreamingPeakDetector
from repro.ecg.resample import decimate_beats
from repro.ecg.segmentation import BeatWindow, segment_beats
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.platform.radio import FULL_FIDUCIAL_PAYLOAD, PEAK_ONLY_PAYLOAD


@pytest.fixture(scope="module")
def record():
    return RecordSynthesizer(SynthesisConfig(n_leads=3), seed=55).synthesize(
        45.0, class_mix={"N": 0.6, "V": 0.3, "L": 0.1}, name="node-stream"
    )


@pytest.fixture(scope="module")
def reference(record, embedded_classifier):
    """Record-scale outcome of the same stages the node streams."""
    fs = record.fs
    filtered = np.column_stack(
        [filter_lead(record.lead(i), fs) for i in range(record.n_leads)]
    )
    detector = StreamingPeakDetector(fs)
    detector.push(filtered[:, 0])
    detector.flush()
    window = BeatWindow(100, 100)
    beats, kept = segment_beats(filtered[:, 0], detector.peaks, window)
    kept_peaks = detector.peaks[kept]
    decimated, _ = decimate_beats(beats, window, 4)
    labels = np.asarray(embedded_classifier.predict(decimated))
    flagged = is_abnormal(labels)
    fiducials = {}
    for i in np.flatnonzero(flagged):
        previous = int(kept_peaks[i - 1]) if i > 0 else None
        fiducials[int(kept_peaks[i])] = delineate_multilead(
            filtered, int(kept_peaks[i]), fs, previous_peak=previous
        ).as_array()
    return kept_peaks, labels, flagged, fiducials


def run_node(record, classifier, block: int):
    node = StreamingNode(classifier, record.fs, n_leads=record.n_leads)
    events = []
    for i in range(0, record.n_samples, block):
        events += node.push(record.signal[i : i + block])
    events += node.flush()
    return events


class TestStreamingNode:
    @pytest.mark.parametrize("block_s", [0.25, 1.7])
    def test_bit_exact_with_record_scale_path(
        self, record, embedded_classifier, reference, block_s
    ):
        kept_peaks, labels, flagged, fiducials = reference
        events = run_node(record, embedded_classifier, int(block_s * record.fs))
        np.testing.assert_array_equal([e.peak for e in events], kept_peaks)
        np.testing.assert_array_equal([e.label for e in events], labels)
        np.testing.assert_array_equal([e.flagged for e in events], flagged)
        assert any(e.flagged for e in events) and not all(e.flagged for e in events)
        for event in events:
            if event.flagged:
                np.testing.assert_array_equal(
                    event.fiducials.as_array(), fiducials[event.peak]
                )
            else:
                assert event.fiducials is None

    def test_whole_record_single_push(self, record, embedded_classifier, reference):
        """One giant push is chopped internally; memory stays bounded."""
        kept_peaks, labels, _, _ = reference
        events = run_node(record, embedded_classifier, record.n_samples)
        np.testing.assert_array_equal([e.peak for e in events], kept_peaks)
        np.testing.assert_array_equal([e.label for e in events], labels)

    def test_tx_bytes_by_verdict(self, record, embedded_classifier):
        events = run_node(record, embedded_classifier, int(0.5 * record.fs))
        for event in events:
            expected = FULL_FIDUCIAL_PAYLOAD if event.flagged else PEAK_ONLY_PAYLOAD
            assert event.tx_bytes == expected + 2  # default overhead

    def test_events_emitted_incrementally_in_order(self, record, embedded_classifier):
        node = StreamingNode(embedded_classifier, record.fs, n_leads=record.n_leads)
        block = int(0.5 * record.fs)
        per_push = []
        for i in range(0, record.n_samples, block):
            per_push.append(node.push(record.signal[i : i + block]))
        per_push.append(node.flush())
        # Events arrive before the end, not all at flush.
        assert sum(1 for events in per_push[:-1] if events) > 3
        peaks = [e.peak for events in per_push for e in events]
        assert peaks == sorted(peaks)
        assert node.n_pending == 0

    def test_single_lead_stream(self, record, embedded_classifier):
        node = StreamingNode(embedded_classifier, record.fs, n_leads=1)
        events = node.push(record.lead(0)) + node.flush()
        assert len(events) > 20
        for event in events:
            if event.flagged:
                assert event.fiducials is not None

    def test_reuse_after_flush_with_early_beat(self, record, embedded_classifier):
        """Regression: after flush() the node serves a fresh stream; a
        QRS landing within window.pre of the new stream's start must be
        dropped (as batch segmentation would at a record start), not
        crash the segment-buffer slicing."""
        node = StreamingNode(embedded_classifier, record.fs, n_leads=record.n_leads)
        first = node.push(record.signal) + node.flush()
        assert first
        origin = node._count
        # Second stream sliced to begin right before a strong beat: the
        # first detected peak falls inside the 100-sample guard band.
        first_peak = first[0].peak
        start = max(0, first_peak - 40)
        events = node.push(record.signal[start:]) + node.flush()
        assert events  # processed, no RuntimeError
        for event in events:
            assert event.peak >= origin + node.window.pre
            if event.flagged:
                assert event.fiducials is not None

    def test_snapshot_restore_continues_bit_exact(
        self, record, embedded_classifier, reference
    ):
        """A session restored from a (pickled) snapshot continues the
        stream with events identical to the uninterrupted node."""
        kept_peaks, labels, _, _ = reference
        block = int(0.5 * record.fs)
        half = (record.n_samples // (2 * block)) * block
        node = StreamingNode(embedded_classifier, record.fs, n_leads=record.n_leads)
        events = []
        for i in range(0, half, block):
            events += node.push(record.signal[i : i + block])
        snapshot = pickle.loads(pickle.dumps(node.snapshot()))
        assert isinstance(snapshot, NodeSnapshot)
        restored = StreamingNode.restore(embedded_classifier, snapshot)
        restored_events = list(events)
        for i in range(half, record.n_samples, block):
            events += node.push(record.signal[i : i + block])
            restored_events += restored.push(record.signal[i : i + block])
        events += node.flush()
        restored_events += restored.flush()
        np.testing.assert_array_equal([e.peak for e in events], kept_peaks)
        np.testing.assert_array_equal([e.label for e in events], labels)
        assert [(e.peak, e.label, e.flagged, e.tx_bytes) for e in events] == [
            (e.peak, e.label, e.flagged, e.tx_bytes) for e in restored_events
        ]

    def test_snapshot_is_an_independent_copy(self, record, embedded_classifier):
        """Mutating the live node after snapshot() does not corrupt the
        snapshot; one snapshot restores any number of times."""
        node = StreamingNode(embedded_classifier, record.fs, n_leads=record.n_leads)
        node.push(record.signal[: int(5 * record.fs)])
        snapshot = node.snapshot()
        node.push(record.signal[int(5 * record.fs) : int(10 * record.fs)])  # diverge
        chunk = record.signal[int(5 * record.fs) : int(6 * record.fs)]
        first = StreamingNode.restore(embedded_classifier, snapshot).push(chunk)
        second = StreamingNode.restore(embedded_classifier, snapshot).push(chunk)
        assert [(e.peak, e.label) for e in first] == [(e.peak, e.label) for e in second]

    def test_snapshot_with_labels_in_flight_rearms_beats(
        self, record, embedded_classifier, reference
    ):
        """A deferred-mode snapshot taken while extracted beats await
        labels must not wedge the restored session: the dead handles
        are re-armed and the restored node re-extracts identical
        windows into a fresh outbox."""
        kept_peaks, labels, _, _ = reference
        node = StreamingNode(
            embedded_classifier, record.fs, n_leads=record.n_leads,
            defer_classification=True,
        )
        half = record.n_samples // 2
        events = node.push(record.signal[:half])
        assert node.n_awaiting_labels > 0
        node.take_pending()  # handles leave the node, labels never return
        restored = StreamingNode.restore(embedded_classifier, node.snapshot())
        assert restored.n_awaiting_labels == node.n_awaiting_labels

        def drain(n):
            pending = n.take_pending()
            if not pending:
                return []
            labels = embedded_classifier.predict(np.vstack([row for _, row in pending]))
            return n.deliver(list(zip((h for h, _ in pending), np.asarray(labels))))

        events += drain(restored)
        events += restored.push(record.signal[half:])
        events += drain(restored)
        events += restored.finish_input()
        events += drain(restored)
        events += restored.finalize()
        np.testing.assert_array_equal([e.peak for e in events], kept_peaks)
        np.testing.assert_array_equal([e.label for e in events], labels)

    def test_deferred_mode_guards(self, record, embedded_classifier):
        node = StreamingNode(
            embedded_classifier, record.fs, n_leads=record.n_leads,
            defer_classification=True,
        )
        node.push(record.signal[: int(15 * record.fs)])
        assert node.n_awaiting_labels > 0
        with pytest.raises(RuntimeError, match="finish_input"):
            node.flush()  # deferred streams end via the handshake
        node.finish_input()
        with pytest.raises(RuntimeError, match="await classification"):
            node.finalize()  # outbox not yet delivered
        inline = StreamingNode(embedded_classifier, record.fs, n_leads=record.n_leads)
        for method in (inline.finish_input, inline.finalize):
            with pytest.raises(RuntimeError, match="deferred"):
                method()
        with pytest.raises(RuntimeError, match="deferred"):
            inline.deliver([])

    def test_validation(self, record, embedded_classifier):
        with pytest.raises(ValueError):
            StreamingNode(embedded_classifier, 0.0)
        with pytest.raises(ValueError):
            StreamingNode(embedded_classifier, record.fs, n_leads=0)
        with pytest.raises(ValueError):
            StreamingNode(embedded_classifier, record.fs, n_leads=2, lead=2)
        with pytest.raises(ValueError):
            StreamingNode(embedded_classifier, record.fs, decimation=0)
        node = StreamingNode(embedded_classifier, record.fs, n_leads=3)
        with pytest.raises(ValueError):
            node.push(record.signal[:100, :2])  # wrong lead count
