"""Tests for single- and multi-lead delineation."""

import numpy as np
import pytest

from repro.dsp.delineation import (
    FIDUCIAL_NAMES,
    BeatFiducials,
    delineate_beat,
    delineate_multilead,
)
from repro.dsp.morphological import filter_lead
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.platform.opcount import OpCounter


@pytest.fixture(scope="module")
def record_and_filtered():
    synth = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=33)
    record = synth.synthesize(40.0, name="delin")
    filtered = np.column_stack(
        [filter_lead(record.signal[:, i], record.fs) for i in range(3)]
    )
    return record, filtered


class TestBeatFiducials:
    def test_array_roundtrip(self):
        values = np.arange(9, dtype=np.int64)
        fid = BeatFiducials.from_array(values)
        np.testing.assert_array_equal(fid.as_array(), values)

    def test_from_array_validates_length(self):
        with pytest.raises(ValueError):
            BeatFiducials.from_array(np.arange(5))

    def test_n_found_counts_missing(self):
        values = np.array([-1, -1, -1, 10, 20, 30, 40, 50, 60])
        assert BeatFiducials.from_array(values).n_found == 6

    def test_names_ordered(self):
        assert FIDUCIAL_NAMES[4] == "r_peak"
        assert FIDUCIAL_NAMES[0] == "p_onset"
        assert FIDUCIAL_NAMES[-1] == "t_end"


class TestSingleLead:
    def test_fiducials_ordered_in_time(self, record_and_filtered):
        record, filtered = record_and_filtered
        x = filtered[:, 0]
        checked = 0
        for peak, symbol in zip(record.annotation.samples, record.annotation.symbols):
            if symbol != "N":
                continue
            fid = delineate_beat(x, int(peak), record.fs).as_array()
            found = fid[fid >= 0]
            assert np.all(np.diff(found) >= 0)
            checked += 1
            if checked >= 10:
                break
        assert checked > 0

    def test_r_peak_passthrough(self, record_and_filtered):
        record, filtered = record_and_filtered
        peak = int(record.annotation.samples[3])
        fid = delineate_beat(filtered[:, 0], peak, record.fs)
        assert fid.r_peak == peak

    def test_qrs_boundaries_bracket_peak(self, record_and_filtered):
        record, filtered = record_and_filtered
        for peak in record.annotation.samples[:10]:
            fid = delineate_beat(filtered[:, 0], int(peak), record.fs)
            if fid.qrs_onset >= 0:
                assert fid.qrs_onset < peak
            if fid.qrs_end >= 0:
                assert fid.qrs_end > peak

    def test_qrs_duration_physiological(self, record_and_filtered):
        record, filtered = record_and_filtered
        durations = []
        for peak, symbol in zip(record.annotation.samples, record.annotation.symbols):
            fid = delineate_beat(filtered[:, 0], int(peak), record.fs)
            if fid.qrs_onset >= 0 and fid.qrs_end >= 0:
                durations.append((fid.qrs_end - fid.qrs_onset) / record.fs)
        assert durations
        assert 0.03 < np.median(durations) < 0.30

    def test_most_pvcs_lack_p_wave(self, record_and_filtered):
        record, filtered = record_and_filtered
        synth = RecordSynthesizer(SynthesisConfig(n_leads=1), seed=44)
        rec = synth.synthesize(120.0, class_mix={"V": 1.0})
        x = filter_lead(rec.signal[:, 0], rec.fs)
        missing_p = 0
        total = 0
        samples = rec.annotation.samples
        for i in range(1, len(samples)):
            fid = delineate_beat(
                x, int(samples[i]), rec.fs, previous_peak=int(samples[i - 1])
            )
            total += 1
            if fid.p_peak < 0:
                missing_p += 1
        assert total > 20
        # PVCs have no P wave; with the previous-T guard the vast
        # majority must report it missing.
        assert missing_p / total > 0.6

    def test_previous_peak_guard_blocks_previous_t_wave(self, record_and_filtered):
        """Without the guard, a premature beat can see its
        predecessor's T wave inside the P window; with it, it cannot."""
        record, filtered = record_and_filtered
        synth = RecordSynthesizer(SynthesisConfig(n_leads=1), seed=45)
        rec = synth.synthesize(120.0, class_mix={"V": 1.0})
        x = filter_lead(rec.signal[:, 0], rec.fs)
        samples = rec.annotation.samples
        found_without = 0
        found_with = 0
        for i in range(1, len(samples)):
            no_guard = delineate_beat(x, int(samples[i]), rec.fs)
            guarded = delineate_beat(
                x, int(samples[i]), rec.fs, previous_peak=int(samples[i - 1])
            )
            found_without += no_guard.p_peak >= 0
            found_with += guarded.p_peak >= 0
        assert found_with <= found_without

    def test_peak_bounds_validated(self, record_and_filtered):
        record, filtered = record_and_filtered
        with pytest.raises(ValueError):
            delineate_beat(filtered[:, 0], -5, record.fs)
        with pytest.raises(ValueError):
            delineate_beat(filtered[:, 0], filtered.shape[0] + 1, record.fs)

    def test_rejects_multilead_input(self, record_and_filtered):
        record, filtered = record_and_filtered
        with pytest.raises(ValueError):
            delineate_beat(filtered, 1000, record.fs)

    def test_op_counter_records_mmd_work(self, record_and_filtered):
        record, filtered = record_and_filtered
        counter = OpCounter()
        delineate_beat(filtered[:, 0], int(record.annotation.samples[2]), record.fs, counter=counter)
        assert counter["cmp"] > 0
        assert counter.total > 1000  # MMD at three scales is not free


class TestMultiLead:
    def test_median_combination(self, record_and_filtered):
        record, filtered = record_and_filtered
        peak = int(record.annotation.samples[5])
        combined = delineate_multilead(filtered, peak, record.fs)
        per_lead = [
            delineate_beat(filtered[:, i], peak, record.fs).as_array() for i in range(3)
        ]
        stacked = np.stack(per_lead)
        for j in range(9):
            found = stacked[:, j][stacked[:, j] >= 0]
            if found.size * 2 > 3:
                assert combined.as_array()[j] == int(np.median(found))

    def test_requires_2d(self, record_and_filtered):
        record, filtered = record_and_filtered
        with pytest.raises(ValueError):
            delineate_multilead(filtered[:, 0], 1000, record.fs)

    def test_multilead_more_complete_than_worst_lead(self, record_and_filtered):
        record, filtered = record_and_filtered
        total_multi = 0
        total_worst = 0
        for peak in record.annotation.samples[:15]:
            multi = delineate_multilead(filtered, int(peak), record.fs).n_found
            worst = min(
                delineate_beat(filtered[:, i], int(peak), record.fs).n_found
                for i in range(3)
            )
            total_multi += multi
            total_worst += worst
        assert total_multi >= total_worst
