"""Tests for delineation evaluation against synthetic ground truth."""

import numpy as np
import pytest

from repro.dsp.delineation import FIDUCIAL_NAMES
from repro.dsp.delineation_eval import (
    FiducialErrorStats,
    evaluate_delineation,
    format_delineation_report,
)
from repro.dsp.morphological import filter_lead
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig


@pytest.fixture(scope="module")
def record_with_truth():
    synth = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=77)
    record = synth.synthesize(60.0, name="truth")
    filtered = np.column_stack(
        [filter_lead(record.signal[:, i], record.fs) for i in range(3)]
    )
    return record, filtered


class TestGroundTruth:
    def test_record_carries_fiducials(self, record_with_truth):
        record, _ = record_with_truth
        assert record.fiducials is not None
        assert record.fiducials.shape == (len(record.annotation), 9)

    def test_truth_ordered(self, record_with_truth):
        record, _ = record_with_truth
        for row in record.fiducials:
            found = row[row >= 0]
            assert np.all(np.diff(found) >= 0)

    def test_truth_r_peak_matches_annotation(self, record_with_truth):
        record, _ = record_with_truth
        np.testing.assert_array_equal(
            record.fiducials[:, 4], record.annotation.samples
        )

    def test_pvc_truth_has_no_p(self, record_with_truth):
        record, _ = record_with_truth
        for row, symbol in zip(record.fiducials, record.annotation.symbols):
            if symbol == "V":
                assert row[0] == row[1] == row[2] == -1


class TestEvaluation:
    @pytest.fixture(scope="class")
    def stats(self, record_with_truth):
        record, filtered = record_with_truth
        return evaluate_delineation(record, filtered, max_beats=40)

    def test_all_fiducials_reported(self, stats):
        assert set(stats) == set(FIDUCIAL_NAMES)
        for value in stats.values():
            assert isinstance(value, FiducialErrorStats)

    def test_r_peak_error_tiny(self, stats):
        """The R peak is fed in from detection, so its error is ~0."""
        assert abs(stats["r_peak"].mean_ms) < 1.0
        assert stats["r_peak"].sensitivity == 1.0

    def test_wave_peaks_localized(self, stats):
        """P and T peaks should land within tens of ms of the truth
        (delineation-literature tolerances are ~20-60 ms)."""
        for name in ("p_peak", "t_peak"):
            if stats[name].n > 5:
                assert stats[name].mad_ms < 80.0

    def test_boundaries_within_tolerance(self, stats):
        for name in ("qrs_onset", "qrs_end"):
            assert stats[name].n > 5
            assert stats[name].mad_ms < 80.0

    def test_sensitivity_reasonable(self, stats):
        assert stats["t_peak"].sensitivity > 0.7

    def test_format(self, stats):
        text = format_delineation_report(stats)
        assert "r_peak" in text and "sens %" in text

    def test_requires_truth(self, record_with_truth):
        from dataclasses import replace

        record, filtered = record_with_truth
        bare = replace(record, fiducials=None)
        with pytest.raises(ValueError):
            evaluate_delineation(bare, filtered)

    def test_requires_2d_signal(self, record_with_truth):
        record, filtered = record_with_truth
        with pytest.raises(ValueError):
            evaluate_delineation(record, filtered[:, 0])
