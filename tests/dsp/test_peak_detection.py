"""Tests for the wavelet-based R-peak detector."""

import numpy as np
import pytest

from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import PeakDetectorConfig, detect_peaks
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.platform.opcount import OpCounter


@pytest.fixture(scope="module")
def clean_record():
    synth = RecordSynthesizer(SynthesisConfig(n_leads=1), seed=21)
    return synth.synthesize(60.0, name="peaks")


@pytest.fixture(scope="module")
def filtered_lead(clean_record):
    return filter_lead(clean_record.lead(0), clean_record.fs)


class TestDetection:
    def test_sensitivity(self, clean_record, filtered_lead):
        peaks = detect_peaks(filtered_lead, clean_record.fs)
        ann = clean_record.annotation.samples
        missed = sum(1 for a in ann if np.min(np.abs(peaks - a)) > 18)
        assert missed / len(ann) < 0.05

    def test_no_false_positives(self, clean_record, filtered_lead):
        peaks = detect_peaks(filtered_lead, clean_record.fs)
        ann = clean_record.annotation.samples
        false_pos = sum(1 for p in peaks if np.min(np.abs(ann - p)) > 18)
        assert false_pos / max(len(peaks), 1) < 0.05

    def test_localization_error(self, clean_record, filtered_lead):
        peaks = detect_peaks(filtered_lead, clean_record.fs)
        ann = clean_record.annotation.samples
        errors = [np.min(np.abs(ann - p)) for p in peaks]
        assert np.median(errors) <= 3

    def test_output_sorted_unique(self, clean_record, filtered_lead):
        peaks = detect_peaks(filtered_lead, clean_record.fs)
        assert np.all(np.diff(peaks) > 0)

    def test_refractory_respected(self, clean_record, filtered_lead):
        config = PeakDetectorConfig()
        peaks = detect_peaks(filtered_lead, clean_record.fs, config)
        min_gap = np.min(np.diff(peaks))
        assert min_gap >= int(config.refractory * clean_record.fs)

    def test_flat_signal_no_peaks(self):
        assert detect_peaks(np.zeros(3600), 360.0).size == 0

    def test_pure_noise_few_detections(self, rng):
        noise = 0.05 * rng.standard_normal(3600)
        peaks = detect_peaks(noise, 360.0)
        # Noise has no cross-scale-consistent max-min pairs.
        assert peaks.size < 12

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            detect_peaks(np.zeros((10, 2)), 360.0)
        with pytest.raises(ValueError):
            detect_peaks(np.zeros(10), -1.0)

    def test_op_counter_records_wavelet_work(self, filtered_lead, clean_record):
        counter = OpCounter()
        detect_peaks(filtered_lead, clean_record.fs, counter=counter)
        assert counter["mul"] > 0
        assert counter["cmp"] >= 3 * filtered_lead.size


class TestNoiseRobustness:
    def test_detection_survives_moderate_noise(self, clean_record, rng):
        x = clean_record.lead(0) + 0.05 * rng.standard_normal(clean_record.n_samples)
        filtered = filter_lead(x, clean_record.fs)
        peaks = detect_peaks(filtered, clean_record.fs)
        ann = clean_record.annotation.samples
        missed = sum(1 for a in ann if np.min(np.abs(peaks - a)) > 18)
        assert missed / len(ann) < 0.10


class TestSearchback:
    def test_searchback_recovers_weak_beat(self):
        """A beat far below threshold is found by the RR-gap rescan."""
        fs = 360.0
        n = int(12 * fs)
        x = np.zeros(n)
        t = np.arange(n)
        strong_positions = [int(fs * s) for s in np.arange(1.0, 12.0, 1.0)]
        weak = strong_positions[5]
        for p in strong_positions:
            # 0.35 sits below the main threshold but above the halved
            # search-back threshold for this beat density.
            amplitude = 0.35 if p == weak else 1.0
            x += amplitude * np.exp(-0.5 * ((t - p) / 5.0) ** 2)
        peaks = detect_peaks(x, fs)
        assert np.min(np.abs(peaks - weak)) <= 10
