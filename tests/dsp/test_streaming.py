"""Tests for block-wise streaming front-end processing."""

import numpy as np
import pytest

from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import detect_peaks
from repro.dsp.streaming import (
    BlockFilter,
    StreamingPeakDetector,
    filter_context_samples,
)
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig


@pytest.fixture(scope="module")
def record():
    synth = RecordSynthesizer(SynthesisConfig(n_leads=1), seed=88)
    return synth.synthesize(40.0, name="stream")


class TestBlockFilter:
    @pytest.mark.parametrize("block_size", [64, 360, 1000, 7777])
    def test_matches_batch_after_warmup(self, record, block_size):
        x = record.lead(0)
        batch = filter_lead(x, record.fs)
        streamer = BlockFilter(record.fs)
        pieces = [
            streamer.push(x[i : i + block_size]) for i in range(0, x.size, block_size)
        ]
        pieces.append(streamer.flush())
        streamed = np.concatenate(pieces)
        assert streamed.size == x.size
        warmup = streamer.context
        np.testing.assert_allclose(streamed[warmup:], batch[warmup:], atol=1e-12)

    def test_output_sample_count_conserved(self, record):
        x = record.lead(0)[:5000]
        streamer = BlockFilter(record.fs)
        total = sum(streamer.push(x[i : i + 100]).size for i in range(0, 5000, 100))
        total += streamer.flush().size
        assert total == 5000

    def test_latency_bounded(self, record):
        streamer = BlockFilter(record.fs)
        assert streamer.delay_samples == filter_context_samples(record.fs)
        # At 360 Hz the context stays under a second of signal.
        assert streamer.delay_samples < record.fs

    def test_delay_samples_is_exact(self, record):
        """Output i must appear exactly when input i + delay arrives."""
        x = record.lead(0)
        streamer = BlockFilter(record.fs)
        delay = streamer.delay_samples
        emitted = 0
        first_emit_at = None
        for i in range(delay + 5):
            out = streamer.push(x[i : i + 1])
            if out.size and first_emit_at is None:
                first_emit_at = i
            emitted += out.size
        assert first_emit_at == delay
        assert emitted == 5

    def test_tiny_blocks(self, record):
        x = record.lead(0)[:2000]
        batch = filter_lead(x, record.fs)
        streamer = BlockFilter(record.fs)
        pieces = [streamer.push(x[i : i + 7]) for i in range(0, 2000, 7)]
        pieces.append(streamer.flush())
        streamed = np.concatenate(pieces)
        warmup = streamer.context
        np.testing.assert_allclose(streamed[warmup:], batch[warmup:], atol=1e-12)

    def test_flush_idempotent(self, record):
        streamer = BlockFilter(record.fs)
        streamer.push(record.lead(0)[:1000])
        first = streamer.flush()
        assert first.size > 0
        assert streamer.flush().size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockFilter(0.0)
        streamer = BlockFilter(360.0)
        with pytest.raises(ValueError):
            streamer.push(np.zeros((2, 2)))


class TestStreamingPeakDetector:
    def test_finds_the_batch_peaks(self, record):
        x = filter_lead(record.lead(0), record.fs)
        batch_peaks = detect_peaks(x, record.fs)
        detector = StreamingPeakDetector(record.fs)
        streamed: list[int] = []
        for i in range(0, x.size, 500):
            streamed.extend(detector.push(x[i : i + 500]))
        streamed.extend(detector.flush())
        streamed = np.asarray(streamed)
        # Every batch peak has a streaming peak nearby (thresholds are
        # per-window in the streaming path, so indices can shift a bit).
        missed = sum(
            1 for p in batch_peaks if np.min(np.abs(streamed - p)) > 15
        )
        assert missed <= max(1, int(0.05 * batch_peaks.size))

    def test_no_duplicate_or_unsorted_peaks(self, record):
        x = filter_lead(record.lead(0), record.fs)
        detector = StreamingPeakDetector(record.fs)
        for i in range(0, x.size, 720):
            detector.push(x[i : i + 720])
        detector.flush()
        peaks = detector.peaks
        assert np.all(np.diff(peaks) > 0)

    def test_refractory_across_blocks(self, record):
        x = filter_lead(record.lead(0), record.fs)
        detector = StreamingPeakDetector(record.fs)
        for i in range(0, x.size, 123):
            detector.push(x[i : i + 123])
        detector.flush()
        refractory = int(detector.config.refractory * record.fs)
        assert np.all(np.diff(detector.peaks) >= refractory)

    def test_few_false_positives(self, record):
        x = filter_lead(record.lead(0), record.fs)
        detector = StreamingPeakDetector(record.fs)
        for i in range(0, x.size, 500):
            detector.push(x[i : i + 500])
        detector.flush()
        ann = record.annotation.samples
        false_pos = sum(
            1 for p in detector.peaks if np.min(np.abs(ann - int(p))) > 18
        )
        assert false_pos <= max(1, int(0.08 * len(ann)))

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingPeakDetector(0.0)
        with pytest.raises(ValueError):
            StreamingPeakDetector(360.0, window_s=2.0, overlap_s=1.5)
        detector = StreamingPeakDetector(360.0)
        with pytest.raises(ValueError):
            detector.push(np.zeros((2, 2)))
