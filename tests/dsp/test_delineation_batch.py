"""Batched and streaming delineation vs the per-beat reference.

The contract of the gated-path refactor: :func:`delineate_beats` and
:class:`StreamingDelineator` must be **bit-exact** with calling
:func:`delineate_multilead` once per beat — the returned fiducials and
the per-beat op counts alike — on MIT-BIH-like synthetic records,
including boundary-clamped beats and P-search guards.
"""

import numpy as np
import pytest

from repro.dsp.delineation import (
    StreamingDelineator,
    delineate_beats,
    delineate_multilead,
)
from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import detect_peaks
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.platform.opcount import OpCounter


@pytest.fixture(scope="module")
def setup():
    """Filtered 3-lead record, detected peaks, per-beat reference."""
    record = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=77).synthesize(
        45.0, class_mix={"N": 0.6, "V": 0.3, "L": 0.1}
    )
    fs = record.fs
    filtered = np.column_stack(
        [filter_lead(record.lead(i), fs) for i in range(record.n_leads)]
    )
    peaks = detect_peaks(filtered[:, 0], fs)
    previous = [None] + [int(p) for p in peaks[:-1]]
    reference, counters = [], []
    for peak, prev in zip(peaks, previous):
        counter = OpCounter()
        reference.append(
            delineate_multilead(
                filtered, int(peak), fs, counter=counter, previous_peak=prev
            ).as_array()
        )
        counters.append(counter.counts)
    return fs, filtered, peaks, previous, reference, counters


class TestDelineateBeats:
    def test_fiducials_bit_exact(self, setup):
        fs, filtered, peaks, previous, reference, _ = setup
        batched = delineate_beats(filtered, peaks, fs, previous_peaks=previous)
        assert len(batched) == peaks.size
        for ref, got in zip(reference, batched):
            np.testing.assert_array_equal(ref, got.as_array())

    def test_op_counts_bit_exact(self, setup):
        """Per-beat counters receive exactly the per-beat path's counts."""
        fs, filtered, peaks, previous, _, ref_counts = setup
        counters = [OpCounter() for _ in range(peaks.size)]
        delineate_beats(filtered, peaks, fs, counters=counters, previous_peaks=previous)
        for ref, got in zip(ref_counts, counters):
            assert ref == got.counts

    def test_boundary_clamped_beats(self, setup):
        """Beats whose segment hits the record edges stay bit-exact."""
        fs, filtered, _, _, _, _ = setup
        n = filtered.shape[0]
        edge_peaks = np.array([0, 5, 60, 150, n - 160, n - 40, n - 1])
        reference = [
            delineate_multilead(filtered, int(p), fs).as_array() for p in edge_peaks
        ]
        for ref, got in zip(reference, delineate_beats(filtered, edge_peaks, fs)):
            np.testing.assert_array_equal(ref, got.as_array())

    def test_unsorted_peaks_keep_input_order(self, setup):
        fs, filtered, peaks, _, reference, _ = setup
        order = np.argsort(-peaks)  # reversed
        batched = delineate_beats(filtered, peaks[order], fs)
        unguarded = [
            delineate_multilead(filtered, int(p), fs).as_array() for p in peaks
        ]
        for pos, b in enumerate(order):
            np.testing.assert_array_equal(unguarded[b], batched[pos].as_array())

    def test_overlapping_segments_share_runs(self, setup):
        """Near-coincident peaks (merged into one run) stay exact."""
        fs, filtered, peaks, _, _, _ = setup
        dense = np.sort(np.concatenate([peaks[:5], peaks[:5] + 7, peaks[:5] + 19]))
        reference = [delineate_multilead(filtered, int(p), fs).as_array() for p in dense]
        for ref, got in zip(reference, delineate_beats(filtered, dense, fs)):
            np.testing.assert_array_equal(ref, got.as_array())

    def test_single_lead(self, setup):
        fs, filtered, peaks, _, _, _ = setup
        one = filtered[:, :1]
        reference = [delineate_multilead(one, int(p), fs).as_array() for p in peaks[:10]]
        for ref, got in zip(reference, delineate_beats(one, peaks[:10], fs)):
            np.testing.assert_array_equal(ref, got.as_array())

    def test_empty_peaks(self, setup):
        fs, filtered, _, _, _, _ = setup
        assert delineate_beats(filtered, np.empty(0, dtype=np.int64), fs) == []

    def test_validation(self, setup):
        fs, filtered, peaks, _, _, _ = setup
        with pytest.raises(ValueError):
            delineate_beats(filtered[:, 0], peaks, fs)  # 1-D leads
        with pytest.raises(ValueError):
            delineate_beats(filtered, np.array([filtered.shape[0]]), fs)
        with pytest.raises(ValueError):
            delineate_beats(filtered, peaks, fs, counters=[OpCounter()])
        with pytest.raises(ValueError):
            delineate_beats(filtered, peaks, fs, previous_peaks=[None])


class TestStreamingDelineator:
    @pytest.mark.parametrize("block", [64, 333, 720])
    def test_bit_exact_across_block_sizes(self, setup, block):
        fs, filtered, peaks, previous, reference, ref_counts = setup
        delineator = StreamingDelineator(fs, lookback_s=3.0)
        results: dict[int, np.ndarray] = {}
        counters = {int(p): OpCounter() for p in peaks}
        next_beat = 0
        n = filtered.shape[0]
        for i in range(0, n, block):
            for peak, fid in delineator.push(filtered[i : i + block]):
                results[peak] = fid.as_array()
            while next_beat < peaks.size and peaks[next_beat] < delineator.n_samples:
                peak = int(peaks[next_beat])
                for done_peak, fid in delineator.add_beat(
                    peak, previous[next_beat], counters[peak]
                ):
                    results[done_peak] = fid.as_array()
                next_beat += 1
        for peak, fid in delineator.flush():
            results[peak] = fid.as_array()
        assert len(results) == peaks.size
        for peak, ref, counts in zip(peaks, reference, ref_counts):
            np.testing.assert_array_equal(ref, results[int(peak)])
            assert counters[int(peak)].counts == counts

    def test_tail_beat_clamped_like_batch(self, setup):
        """A beat finalized only at flush uses the record-end clamping."""
        fs, filtered, _, _, _, _ = setup
        n = filtered.shape[0]
        peak = n - 30  # right context never arrives
        delineator = StreamingDelineator(fs, lookback_s=0.5)
        delineator.push(filtered)
        assert delineator.add_beat(peak) == []
        (done_peak, fid), = delineator.flush()
        assert done_peak == peak
        np.testing.assert_array_equal(
            delineate_multilead(filtered, peak, fs).as_array(), fid.as_array()
        )

    def test_memory_stays_bounded(self, setup):
        fs, filtered, _, _, _, _ = setup
        delineator = StreamingDelineator(fs, lookback_s=1.0)
        occupancy = []
        for i in range(0, filtered.shape[0], 90):
            delineator.push(filtered[i : i + 90])
            occupancy.append(delineator.buffered_samples)
        # lookback + left search context + one push block, with slack.
        assert max(occupancy) <= int(1.0 * fs) + int(0.5 * fs) + 90

    def test_discarded_context_raises(self, setup):
        fs, filtered, _, _, _, _ = setup
        delineator = StreamingDelineator(fs, lookback_s=0.0)
        for i in range(0, filtered.shape[0], 360):
            delineator.push(filtered[i : i + 360])
        with pytest.raises(ValueError):
            delineator.add_beat(100)  # far behind the retained history

    def test_add_beat_validation(self, setup):
        fs, filtered, _, _, _, _ = setup
        delineator = StreamingDelineator(fs)
        delineator.push(filtered[:1000])
        with pytest.raises(ValueError):
            delineator.add_beat(1000)  # not yet pushed
        with pytest.raises(ValueError):
            delineator.add_beat(-1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StreamingDelineator(0.0)
        with pytest.raises(ValueError):
            StreamingDelineator(360.0, lookback_s=-1.0)

    def test_reuse_after_flush_clamps_at_stream_origin(self, setup):
        """Regression: a beat early in a post-flush stream must clamp
        its segment at the new stream's origin (like the batch path at
        a record start), not fail the left-context check."""
        fs, filtered, _, _, _, _ = setup
        delineator = StreamingDelineator(fs, lookback_s=1.0)
        delineator.push(filtered[:2000])
        assert delineator.flush() == []
        origin = delineator.n_samples
        # Second stream: first beat only 60 samples in (inside the
        # ~0.31 s left search span), scheduled within the lookback.
        stream_b = filtered[2000:4000]
        delineator.push(stream_b[:400])
        early_peak = origin + 60
        results = delineator.add_beat(early_peak)
        results += delineator.push(stream_b[400:])
        assert [peak for peak, _ in results] == [early_peak]
        reference = delineate_multilead(stream_b, 60, fs).as_array()
        expected = np.where(reference >= 0, reference + origin, -1)
        np.testing.assert_array_equal(results[0][1].as_array(), expected)
        # Beats from the previous stream are rejected outright.
        with pytest.raises(ValueError):
            delineator.add_beat(origin - 10)


class TestAddBeatsBatch:
    """``add_beats`` == one ``add_beat`` per item, bit-exactly."""

    @pytest.mark.parametrize("block", [333, 720])
    def test_bit_exact_vs_sequential(self, setup, block):
        fs, filtered, peaks, previous, reference, ref_counts = setup
        delineator = StreamingDelineator(fs, lookback_s=3.0)
        results: dict[int, np.ndarray] = {}
        counters = {int(p): OpCounter() for p in peaks}
        next_beat = 0
        n = filtered.shape[0]
        for i in range(0, n, block):
            for peak, fid in delineator.push(filtered[i : i + block]):
                results[peak] = fid.as_array()
            batch = []
            while next_beat < peaks.size and peaks[next_beat] < delineator.n_samples:
                peak = int(peaks[next_beat])
                batch.append((peak, previous[next_beat], counters[peak]))
                next_beat += 1
            for done_peak, fid in delineator.add_beats(batch):
                results[done_peak] = fid.as_array()
        for peak, fid in delineator.flush():
            results[peak] = fid.as_array()
        assert len(results) == peaks.size
        for peak, ref, counts in zip(peaks, reference, ref_counts):
            np.testing.assert_array_equal(ref, results[int(peak)])
            assert counters[int(peak)].counts == counts

    def test_two_item_form_without_counter(self, setup):
        fs, filtered, peaks, previous, reference, _ = setup
        delineator = StreamingDelineator(fs, lookback_s=60.0)
        delineator.push(filtered)
        batch = [(int(p), prev) for p, prev in zip(peaks[:8], previous[:8])]
        done = dict(delineator.add_beats(batch))
        for peak, ref in zip(peaks[:8], reference[:8]):
            np.testing.assert_array_equal(ref, done[int(peak)].as_array())

    def test_origin_clamped_and_tail_beats(self, setup):
        """Edge beats (clamped left at origin, finalized only at flush)
        go through add_beats like through add_beat."""
        fs, filtered, _, _, _, _ = setup
        n = filtered.shape[0]
        edge_peaks = [5, 60, n - 160, n - 30]
        delineator = StreamingDelineator(fs, lookback_s=60.0)
        delineator.push(filtered)
        results = dict(delineator.add_beats([(p, None) for p in edge_peaks]))
        results.update(delineator.flush())
        assert set(results) == set(edge_peaks)
        for peak in edge_peaks:
            np.testing.assert_array_equal(
                delineate_multilead(filtered, peak, fs).as_array(),
                results[peak].as_array(),
            )

    def test_empty_batch(self, setup):
        fs, filtered, _, _, _, _ = setup
        delineator = StreamingDelineator(fs)
        delineator.push(filtered[:1000])
        assert delineator.add_beats([]) == []

    def test_validation_is_all_or_nothing(self, setup):
        fs, filtered, _, _, _, _ = setup
        delineator = StreamingDelineator(fs, lookback_s=60.0)
        delineator.push(filtered[:3000])
        with pytest.raises(ValueError):
            delineator.add_beats([(500, None), (5000, None)])  # 2nd not pushed
        # The valid first item must NOT have been scheduled.
        assert delineator.flush() == []

    def test_single_lead_batch(self, setup):
        fs, filtered, peaks, previous, _, _ = setup
        one = filtered[:, :1]
        delineator = StreamingDelineator(fs, lookback_s=60.0)
        delineator.push(one)
        batch = [(int(p), prev) for p, prev in zip(peaks[:10], previous[:10])]
        done = dict(delineator.add_beats(batch))
        for peak, prev in zip(peaks[:10], previous[:10]):
            if int(peak) in done:
                np.testing.assert_array_equal(
                    delineate_multilead(
                        one, int(peak), fs, previous_peak=prev
                    ).as_array(),
                    done[int(peak)].as_array(),
                )
