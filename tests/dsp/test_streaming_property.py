"""Seeded property tests: streaming robustness to arbitrary chunking.

The streaming engine's core promise is that *how* samples arrive never
changes *what* comes out: any chunk-size schedule (single samples to
whole-record pushes) must emit events bit-identical to the record-scale
path.  These tests drive randomized schedules from fixed seeds so a
failure is reproducible.
"""

import numpy as np
import pytest

from repro.core.defuzz import is_abnormal
from repro.dsp.delineation import delineate_multilead
from repro.dsp.morphological import filter_lead
from repro.dsp.streaming import StreamingNode, StreamingPeakDetector
from repro.ecg.resample import decimate_beats
from repro.ecg.segmentation import BeatWindow, segment_beats
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig


@pytest.fixture(scope="module")
def record():
    return RecordSynthesizer(SynthesisConfig(n_leads=3), seed=77).synthesize(
        30.0, class_mix={"N": 0.55, "V": 0.3, "L": 0.15}, name="prop-stream"
    )


@pytest.fixture(scope="module")
def reference(record, embedded_classifier):
    """Record-scale outcome of the same stages the node streams."""
    fs = record.fs
    filtered = np.column_stack(
        [filter_lead(record.lead(i), fs) for i in range(record.n_leads)]
    )
    detector = StreamingPeakDetector(fs)
    detector.push(filtered[:, 0])
    detector.flush()
    window = BeatWindow(100, 100)
    beats, kept = segment_beats(filtered[:, 0], detector.peaks, window)
    kept_peaks = detector.peaks[kept]
    decimated, _ = decimate_beats(beats, window, 4)
    labels = np.asarray(embedded_classifier.predict(decimated))
    flagged = is_abnormal(labels)
    fiducials = {}
    for i in np.flatnonzero(flagged):
        previous = int(kept_peaks[i - 1]) if i > 0 else None
        fiducials[int(kept_peaks[i])] = delineate_multilead(
            filtered, int(kept_peaks[i]), fs, previous_peak=previous
        ).as_array()
    return kept_peaks, labels, flagged, fiducials


def random_chunks(n_samples: int, rng: np.random.Generator):
    """Chunk sizes from single samples to multi-second blocks."""
    sizes = []
    remaining = n_samples
    while remaining > 0:
        if rng.random() < 0.15:
            n = int(rng.integers(1, 8))  # pathological: near-sample-level
        else:
            n = int(rng.integers(8, 2500))
        n = min(n, remaining)
        sizes.append(n)
        remaining -= n
    return sizes


def check_events(events, reference):
    kept_peaks, labels, flagged, fiducials = reference
    np.testing.assert_array_equal([e.peak for e in events], kept_peaks)
    np.testing.assert_array_equal([e.label for e in events], labels)
    np.testing.assert_array_equal([e.flagged for e in events], flagged)
    for event in events:
        if event.flagged:
            np.testing.assert_array_equal(
                event.fiducials.as_array(), fiducials[event.peak]
            )
        else:
            assert event.fiducials is None


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_node_randomized_chunking_matches_record_scale(
    seed, record, embedded_classifier, reference
):
    rng = np.random.default_rng(seed)
    node = StreamingNode(embedded_classifier, record.fs, n_leads=record.n_leads)
    events, i = [], 0
    for n in random_chunks(record.n_samples, rng):
        events += node.push(record.signal[i : i + n])
        i += n
    events += node.flush()
    check_events(events, reference)


@pytest.mark.parametrize("seed", [0, 1])
def test_deferred_handshake_matches_record_scale(
    seed, record, embedded_classifier, reference
):
    """Drive a deferred-classify node by hand (as the gateway would),
    resolving its outbox at randomized intervals."""
    rng = np.random.default_rng(seed)
    node = StreamingNode(
        embedded_classifier, record.fs, n_leads=record.n_leads, defer_classification=True
    )
    pending: list = []

    def resolve():
        if not pending:
            return []
        rows = np.vstack([row for _, row in pending])
        labels = np.asarray(embedded_classifier.predict(rows))
        resolved = [(handle, label) for (handle, _), label in zip(pending, labels)]
        pending.clear()
        return node.deliver(resolved)

    events, i = [], 0
    for n in random_chunks(record.n_samples, rng):
        events += node.push(record.signal[i : i + n])
        i += n
        pending.extend(node.take_pending())
        if pending and rng.random() < 0.3:
            events += resolve()
    events += node.finish_input()
    pending.extend(node.take_pending())
    events += resolve()
    events += node.finalize()
    check_events(events, reference)
