"""Tests for morphological operators and the filtering stages."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dsp.morphological import (
    closing,
    dilation,
    erosion,
    estimate_baseline,
    filter_lead,
    opening,
    remove_baseline,
    suppress_noise,
)
from repro.platform.opcount import OpCounter


class TestPrimitives:
    def test_erosion_is_sliding_min(self):
        x = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        out = erosion(x, 3)
        np.testing.assert_array_equal(out, [1.0, 1.0, 1.0, 1.0, 1.0])

    def test_dilation_is_sliding_max(self):
        x = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        out = dilation(x, 3)
        np.testing.assert_array_equal(out, [3.0, 4.0, 4.0, 5.0, 5.0])

    def test_length_one_is_identity(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(erosion(x, 1), x)
        np.testing.assert_array_equal(dilation(x, 1), x)

    def test_output_length_preserved(self, rng):
        x = rng.standard_normal(100)
        for length in (3, 9, 31):
            assert erosion(x, length).shape == x.shape
            assert dilation(x, length).shape == x.shape

    def test_erosion_below_dilation(self, rng):
        x = rng.standard_normal(200)
        assert np.all(erosion(x, 7) <= dilation(x, 7))

    def test_erosion_bounds_signal(self, rng):
        x = rng.standard_normal(200)
        assert np.all(erosion(x, 7) <= x)
        assert np.all(dilation(x, 7) >= x)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            erosion(np.zeros(5), 0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            dilation(np.zeros((5, 2)), 3)

    def test_opening_removes_narrow_peak(self):
        x = np.zeros(50)
        x[25] = 1.0
        assert np.all(opening(x, 5) == 0.0)

    def test_closing_fills_narrow_valley(self):
        x = np.zeros(50)
        x[25] = -1.0
        assert np.all(closing(x, 5) == 0.0)

    def test_opening_antiextensive_closing_extensive(self, rng):
        x = rng.standard_normal(150)
        assert np.all(opening(x, 9) <= x + 1e-12)
        assert np.all(closing(x, 9) >= x - 1e-12)

    def test_opening_idempotent(self, rng):
        x = rng.standard_normal(150)
        once = opening(x, 9)
        twice = opening(once, 9)
        # Idempotence holds in the interior (edge padding perturbs ends).
        np.testing.assert_allclose(once[10:-10], twice[10:-10])


class TestBaselineRemoval:
    def test_removes_slow_drift(self):
        fs = 360.0
        t = np.arange(int(10 * fs)) / fs
        drift = 0.5 * np.sin(2 * np.pi * 0.3 * t)
        x = drift.copy()
        x[::360] += 1.0  # narrow spikes (QRS-like)
        filtered = remove_baseline(x, fs)
        interior = slice(200, -200)
        assert np.std(filtered[interior][x[interior] < 0.5]) < 0.2 * np.std(
            drift[interior]
        )

    def test_preserves_narrow_peaks(self):
        fs = 360.0
        x = np.zeros(int(4 * fs))
        x[720:724] = 1.0
        filtered = remove_baseline(x, fs)
        assert filtered[720:724].max() > 0.7

    def test_baseline_estimate_smooth(self):
        fs = 360.0
        t = np.arange(int(5 * fs)) / fs
        x = 0.3 * np.sin(2 * np.pi * 0.2 * t)
        x[::300] += 1.0
        baseline = estimate_baseline(x, fs)
        # Baseline must not contain the spikes.
        assert baseline.max() < 0.5

    def test_invalid_fs(self):
        with pytest.raises(ValueError):
            remove_baseline(np.zeros(100), 0.0)


class TestNoiseSuppression:
    def test_reduces_white_noise(self, rng):
        fs = 360.0
        x = 0.1 * rng.standard_normal(int(4 * fs))
        smoothed = suppress_noise(x, fs)
        assert smoothed.std() < 0.8 * x.std()

    def test_preserves_amplitude_scale(self, rng):
        fs = 360.0
        t = np.arange(int(2 * fs)) / fs
        x = np.sin(2 * np.pi * 1.0 * t)
        smoothed = suppress_noise(x, fs)
        assert smoothed.max() > 0.9


class TestFilterLead:
    def test_full_chain_runs(self, rng):
        fs = 360.0
        x = rng.standard_normal(int(2 * fs))
        assert filter_lead(x, fs).shape == x.shape


class TestOpCounting:
    def test_erosion_counts(self):
        counter = OpCounter()
        erosion(np.zeros(100), 9, counter)
        assert counter["cmp"] == 100 * 8
        assert counter["load"] == 100 * 9
        assert counter["store"] == 100

    def test_opening_counts_two_passes(self):
        counter = OpCounter()
        opening(np.zeros(50), 5, counter)
        assert counter["cmp"] == 2 * 50 * 4

    def test_filter_lead_records_work(self):
        counter = OpCounter()
        filter_lead(np.zeros(720), 360.0, counter=counter)
        assert counter.total > 0
        assert counter["cmp"] > 0
        assert counter["sub"] >= 720  # baseline subtraction

    def test_counter_optional(self):
        # No counter: no error.
        erosion(np.zeros(10), 3)


@settings(max_examples=30, deadline=None)
@given(
    x=hnp.arrays(float, st.integers(5, 80), elements=st.floats(-100, 100)),
    length=st.integers(1, 15),
)
def test_duality_property(x, length):
    """Property: erosion(-x) == -dilation(x) (morphological duality)."""
    np.testing.assert_allclose(erosion(-x, length), -dilation(x, length))
