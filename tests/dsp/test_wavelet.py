"""Tests for the à-trous dyadic wavelet transform."""

import numpy as np
import pytest

from repro.dsp.wavelet import HIGHPASS, LOWPASS, dyadic_wavelet, scale_delay
from repro.platform.opcount import OpCounter


class TestFilters:
    def test_lowpass_normalized(self):
        assert LOWPASS.sum() == pytest.approx(1.0)

    def test_highpass_zero_mean(self):
        assert HIGHPASS.sum() == pytest.approx(0.0)


class TestTransform:
    def test_output_shape(self, rng):
        x = rng.standard_normal(500)
        w = dyadic_wavelet(x, n_scales=4)
        assert w.shape == (4, 500)

    def test_linearity(self, rng):
        a = rng.standard_normal(300)
        b = rng.standard_normal(300)
        wa = dyadic_wavelet(a)
        wb = dyadic_wavelet(b)
        wab = dyadic_wavelet(a + 2.0 * b)
        np.testing.assert_allclose(wab, wa + 2.0 * wb, atol=1e-10)

    def test_constant_signal_gives_zero_detail(self):
        x = np.full(200, 3.7)
        w = dyadic_wavelet(x)
        # Interior samples (away from edge effects) must be ~0.
        np.testing.assert_allclose(w[:, 40:-40], 0.0, atol=1e-10)

    def test_derivative_like_response(self):
        """A rising ramp gives a positive scale-1 response."""
        x = np.linspace(0.0, 10.0, 300)
        w = dyadic_wavelet(x)
        assert np.all(w[0, 20:-20] > 0)

    def test_zero_crossing_at_symmetric_peak(self):
        """The R-peak locator relies on this alignment."""
        n = 400
        x = np.exp(-0.5 * ((np.arange(n) - 200) / 6.0) ** 2)
        w = dyadic_wavelet(x)
        for j in range(3):
            scale = w[j]
            # Sign change bracketing the peak.
            region = scale[190:211]
            signs = np.sign(region)
            crossings = np.flatnonzero(signs[:-1] * signs[1:] < 0)
            assert crossings.size >= 1
            crossing_pos = 190 + crossings[0]
            assert abs(int(crossing_pos) - 200) <= 3 + 2 * j

    def test_scale_responses_grow_with_support(self):
        """Slow waves appear at coarse scales, not fine ones."""
        n = 2000
        t = np.arange(n) / 360.0
        slow = np.sin(2 * np.pi * 2.0 * t)  # 2 Hz
        w = dyadic_wavelet(slow, n_scales=4)
        fine = np.abs(w[0, 200:-200]).mean()
        coarse = np.abs(w[3, 200:-200]).mean()
        assert coarse > 3 * fine

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            dyadic_wavelet(np.zeros((10, 2)))
        with pytest.raises(ValueError):
            dyadic_wavelet(np.zeros(10), n_scales=0)

    def test_scale_delay_values(self):
        assert [scale_delay(j) for j in (1, 2, 3, 4)] == [1, 3, 7, 15]
        with pytest.raises(ValueError):
            scale_delay(0)

    def test_op_counting(self):
        counter = OpCounter()
        dyadic_wavelet(np.zeros(360), n_scales=4, counter=counter)
        # 4 scales x (2-tap highpass + 4-tap lowpass) multiply-accumulates.
        assert counter["mul"] == 360 * 4 * (2 + 4)
        assert counter["store"] == 360 * 8
