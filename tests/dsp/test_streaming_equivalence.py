"""Streaming/batch bit-exact equivalence and op-count invariance.

The O(n) kernels (van Herk–Gil-Werman morphology, stateful streaming
cascades, carried-state wavelet filters) must change *nothing*
observable except wall-clock time:

* streamed outputs equal the batch outputs **bit for bit** — across
  block sizes {1, 7, 64, 1024} and sampling rates {90, 250, 360} Hz;
* the fast batch kernels equal the naive sliding-window reference;
* op counters keep reporting the naive embedded counts (window length
  ``m`` costs ``m - 1`` comparisons per sample), exactly as the seed
  implementation did — they model the reference C firmware, not the
  Python kernels.
"""

import numpy as np
import pytest
from numpy.lib.stride_tricks import sliding_window_view

from repro.dsp.kernels import StreamingExtremum, sliding_extremum
from repro.dsp.morphological import (
    closing,
    dilation,
    erosion,
    filter_lead,
    opening,
    suppress_noise,
)
from repro.dsp.streaming import BlockFilter, StreamingPeakDetector
from repro.dsp.wavelet import StreamingWavelet, dyadic_wavelet
from repro.platform.opcount import OpCounter

BLOCK_SIZES = [1, 7, 64, 1024]
SAMPLING_RATES = [90.0, 250.0, 360.0]


def _signal(fs: float, seconds: float = 6.0, seed: int = 5) -> np.ndarray:
    """Noisy multi-tone test signal (no ECG structure required)."""
    rng = np.random.default_rng(seed)
    t = np.arange(int(seconds * fs)) / fs
    return (
        np.sin(2 * np.pi * 1.1 * t)
        + 0.4 * np.sin(2 * np.pi * 17.0 * t)
        + 0.2 * rng.standard_normal(t.size)
    )


def _stream(pushable, x: np.ndarray, block: int) -> np.ndarray:
    parts = [pushable.push(x[i : i + block]) for i in range(0, x.size, block)]
    parts.append(pushable.flush())
    axis = 1 if parts[0].ndim == 2 else 0
    return np.concatenate(parts, axis=axis)


class TestFastKernelsMatchNaive:
    @pytest.mark.parametrize("length", [2, 3, 5, 16, 17, 31, 73, 109])
    def test_sliding_extremum_vs_window_view(self, rng, length):
        x = rng.standard_normal(500)
        ref_min = sliding_window_view(x, length).min(axis=1)
        ref_max = sliding_window_view(x, length).max(axis=1)
        np.testing.assert_array_equal(sliding_extremum(x, length), ref_min)
        np.testing.assert_array_equal(sliding_extremum(x, length, maximum=True), ref_max)

    @pytest.mark.parametrize("length", [1, 2, 5, 17, 73])
    @pytest.mark.parametrize("block", BLOCK_SIZES)
    def test_streaming_extremum_matches_erosion_dilation(self, rng, length, block):
        x = rng.standard_normal(700)
        np.testing.assert_array_equal(
            _stream(StreamingExtremum(length), x, block), erosion(x, length)
        )
        np.testing.assert_array_equal(
            _stream(StreamingExtremum(length, maximum=True), x, block),
            dilation(x, length),
        )


class TestBlockFilterBitExact:
    @pytest.mark.parametrize("fs", SAMPLING_RATES)
    @pytest.mark.parametrize("block", BLOCK_SIZES)
    def test_streamed_equals_batch_everywhere(self, fs, block):
        """Bit-exact from sample 0 — no warm-up region at all."""
        x = _signal(fs)
        streamed = _stream(BlockFilter(fs), x, block)
        np.testing.assert_array_equal(streamed, filter_lead(x, fs))

    def test_reusable_after_flush(self):
        fs = 360.0
        x = _signal(fs)
        block_filter = BlockFilter(fs)
        first = _stream(block_filter, x, 128)
        second = _stream(block_filter, x, 128)  # same object, fresh stream
        np.testing.assert_array_equal(first, second)

    def test_short_stream_shorter_than_context(self):
        fs = 360.0
        x = _signal(fs)[:50]  # far below the ~187-sample context
        streamed = _stream(BlockFilter(fs), x, 7)
        np.testing.assert_array_equal(streamed, filter_lead(x, fs))


class TestStreamingWaveletBitExact:
    @pytest.mark.parametrize("fs", SAMPLING_RATES)
    @pytest.mark.parametrize("block", BLOCK_SIZES)
    def test_streamed_equals_batch(self, fs, block):
        x = _signal(fs)
        streamed = _stream(StreamingWavelet(4), x, block)
        np.testing.assert_array_equal(streamed, dyadic_wavelet(x))

    def test_flush_resets_for_next_stream(self, rng):
        wavelet = StreamingWavelet(4)
        wavelet.push(rng.standard_normal(100))
        wavelet.flush()
        x = rng.standard_normal(300)
        np.testing.assert_array_equal(
            np.concatenate([wavelet.push(x), wavelet.flush()], axis=1),
            dyadic_wavelet(x),
        )


class TestOpCountInvariance:
    """The fast kernels must report the seed's naive embedded counts."""

    @pytest.mark.parametrize("length", [3, 5, 73, 109])
    def test_erosion_dilation_naive_counts(self, rng, length):
        x = rng.standard_normal(400)
        for operator in (erosion, dilation):
            counter = OpCounter()
            operator(x, length, counter)
            assert counter["cmp"] == x.size * (length - 1)
            assert counter["load"] == x.size * length
            assert counter["store"] == x.size

    @pytest.mark.parametrize("length", [5, 31])
    def test_opening_closing_two_passes(self, rng, length):
        x = rng.standard_normal(200)
        for operator in (opening, closing):
            counter = OpCounter()
            operator(x, length, counter)
            assert counter["cmp"] == 2 * x.size * (length - 1)

    @pytest.mark.parametrize("fs", SAMPLING_RATES)
    def test_filter_lead_total_matches_analytic(self, fs):
        """Chain total equals the sum of its stages' naive counts."""
        x = _signal(fs, seconds=3.0)
        counter = OpCounter()
        filter_lead(x, fs, counter=counter)
        m_open = max(3, int(round(0.2 * fs)) | 1)
        m_close = max(3, int(round(0.3 * fs)) | 1)
        m_noise = max(3, int(round(0.014 * fs)) | 1)
        expected_cmp = 2 * x.size * (
            (m_open - 1) + (m_close - 1) + 2 * (m_noise - 1)
        )
        assert counter["cmp"] == expected_cmp
        assert counter["sub"] == x.size  # baseline subtraction
        assert counter["shift"] == x.size  # divide-by-two in denoising


class TestStreamingDetectorFlush:
    def test_push_after_flush_keeps_absolute_origin(self):
        """Regression: flush used to leave the stream origin stale, so
        peaks from a later push were reported relative to the wrong
        sample index."""
        from repro.ecg.synth import RecordSynthesizer, SynthesisConfig

        record = RecordSynthesizer(SynthesisConfig(n_leads=1), seed=44).synthesize(40.0)
        x = filter_lead(record.lead(0), record.fs)
        half = x.size // 2

        detector = StreamingPeakDetector(record.fs)
        for i in range(0, half, 500):
            detector.push(x[i : min(i + 500, half)])
        detector.flush()
        first_segment = detector.peaks.copy()

        for i in range(half, x.size, 500):
            detector.push(x[i : i + 500])
        detector.flush()
        second_segment = detector.peaks[first_segment.size :]

        # Second-segment peaks must land in the second half of the
        # global timeline, not start over near zero.
        assert second_segment.size > 0
        assert np.all(second_segment >= half)
        assert np.all(np.diff(detector.peaks) > 0)

    def test_detections_invariant_to_chunking(self):
        """Regression: threshold energy must fold causally at window
        consumption points, so the peak sequence cannot depend on how
        the caller blocks the stream (one big push used to let future
        loud samples raise the thresholds of earlier quiet windows)."""
        from repro.ecg.synth import RecordSynthesizer, SynthesisConfig

        record = RecordSynthesizer(SynthesisConfig(n_leads=1), seed=12).synthesize(60.0)
        x = filter_lead(record.lead(0), record.fs)
        x[x.size // 2 :] *= 6.0  # quiet first half, loud second half

        def detect(block):
            detector = StreamingPeakDetector(record.fs)
            peaks: list[int] = []
            for i in range(0, x.size, block):
                peaks.extend(detector.push(x[i : i + block]))
            peaks.extend(detector.flush())
            return peaks

        whole = detect(x.size)
        assert detect(180) == whole
        assert detect(1234) == whole
        # Quiet-half beats must actually be detected.
        assert sum(1 for p in whole if p < x.size // 2) > 20

    def test_thresholds_adapt_to_amplitude_drop(self):
        """Regression: cumulative (undecayed) running thresholds went
        blind after a large amplitude drop; the decayed estimate must
        keep detecting in the quiet epoch."""
        from repro.ecg.synth import RecordSynthesizer, SynthesisConfig

        record = RecordSynthesizer(SynthesisConfig(n_leads=1), seed=77).synthesize(120.0)
        x = filter_lead(record.lead(0), record.fs)
        half = x.size // 2
        x[half:] *= 0.25  # electrode-degradation-style amplitude step

        detector = StreamingPeakDetector(record.fs)
        peaks: list[int] = []
        for i in range(0, x.size, 500):
            peaks.extend(detector.push(x[i : i + 500]))
        peaks.extend(detector.flush())

        annotated_quiet = sum(1 for a in record.annotation.samples if a >= half)
        detected_quiet = sum(1 for p in peaks if p >= half)
        assert detected_quiet > 0.6 * annotated_quiet

    def test_flush_discards_short_tail_but_advances_origin(self):
        fs = 360.0
        detector = StreamingPeakDetector(fs)
        detector.push(np.zeros(100))  # below the 0.5 s analysis floor
        assert detector.flush() == []
        x = filter_lead(_signal(fs, seconds=15.0), fs)
        detector.push(x)
        confirmed = detector.flush()
        # Everything reported after the reset sits past the discarded
        # 100-sample prefix.
        assert all(p >= 100 for p in confirmed)
