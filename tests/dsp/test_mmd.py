"""Tests for the multi-scale morphological derivative."""

import numpy as np
import pytest

from repro.dsp.mmd import mmd_multiscale, mmd_transform
from repro.platform.opcount import OpCounter


class TestMMD:
    def test_zero_on_linear_ramp(self):
        """Straight segments have no morphological curvature."""
        x = np.linspace(0.0, 10.0, 100)
        out = mmd_transform(x, 4)
        np.testing.assert_allclose(out[8:-8], 0.0, atol=1e-10)

    def test_negative_at_convex_peak(self):
        x = np.exp(-0.5 * ((np.arange(100) - 50) / 4.0) ** 2)
        out = mmd_transform(x, 6)
        assert out[50] < 0

    def test_positive_at_concave_corner(self):
        """Onset of a positive wave: flat-then-rising (concave) corner."""
        x = np.concatenate([np.zeros(50), np.linspace(0.0, 5.0, 50)])
        out = mmd_transform(x, 5)
        assert out[49:52].max() > 0

    def test_constant_signal_gives_zero(self):
        out = mmd_transform(np.full(60, 2.5), 3)
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    def test_scale_widens_response(self):
        x = np.exp(-0.5 * ((np.arange(200) - 100) / 8.0) ** 2)
        narrow = mmd_transform(x, 3)
        wide = mmd_transform(x, 15)
        assert np.count_nonzero(np.abs(wide) > 0.01) > np.count_nonzero(
            np.abs(narrow) > 0.01
        )

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            mmd_transform(np.zeros(10), 0)

    def test_multiscale_stack(self, rng):
        x = rng.standard_normal(80)
        stack = mmd_multiscale(x, (2, 4, 8))
        assert stack.shape == (3, 80)
        np.testing.assert_allclose(stack[1], mmd_transform(x, 4))

    def test_op_counting(self):
        counter = OpCounter()
        mmd_transform(np.zeros(100), 4, counter)
        # dilation + erosion with 9-sample element: 2 x 100 x 8 compares.
        assert counter["cmp"] == 2 * 100 * 8
        assert counter["add"] == 100
        assert counter["sub"] == 100
