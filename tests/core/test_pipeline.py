"""Tests for the end-to-end RP classifier pipeline."""

import numpy as np
import pytest

from repro.core.defuzz import UNKNOWN_LABEL
from repro.core.metrics import ClassificationReport
from repro.core.pipeline import RPClassifierPipeline


class TestTrainedPipeline:
    def test_evaluation_report(self, pipeline, datasets):
        report = pipeline.evaluate(datasets.test)
        assert isinstance(report, ClassificationReport)
        assert report.n_beats == len(datasets.test)
        assert 0.0 <= report.ndr <= 1.0
        assert 0.0 <= report.arr <= 1.0

    def test_classifier_actually_separates(self, pipeline, datasets):
        """Core sanity: the trained system must be far above chance."""
        report = pipeline.tuned_for(datasets.test, 0.97).evaluate(datasets.test)
        assert report.arr >= 0.95
        assert report.ndr >= 0.75

    def test_predict_label_domain(self, pipeline, datasets):
        labels = pipeline.predict(datasets.test.X[:100])
        assert set(np.unique(labels)).issubset({UNKNOWN_LABEL, 0, 1, 2})

    def test_project_shape(self, pipeline, datasets):
        u = pipeline.project(datasets.test.X[:7])
        assert u.shape == (7, pipeline.projection.n_coefficients)

    def test_fuzzy_values_shape(self, pipeline, datasets):
        f = pipeline.fuzzy_values(datasets.test.X[:7])
        assert f.shape == (7, 3)

    def test_memo_detects_balanced_inplace_mutation(self, pipeline, datasets):
        """Regression: sum-preserving edits and element swaps must
        invalidate the fuzzy-value memo, not return stale values."""
        X = datasets.test.X.copy()
        pipeline.fuzzy_values(X)  # populate the memo keyed on X
        X[0, 0] += 0.5
        X[0, 1] -= 0.5  # balanced: the plain sum is unchanged
        fresh = pipeline.nfc.fuzzy_values(pipeline.project(X.copy()))
        np.testing.assert_array_equal(pipeline.fuzzy_values(X), fresh)
        X[1, 0], X[1, 1] = float(X[1, 1]), float(X[1, 0])  # element swap
        fresh = pipeline.nfc.fuzzy_values(pipeline.project(X.copy()))
        np.testing.assert_array_equal(pipeline.fuzzy_values(X), fresh)

    def test_picklable_after_fuzzy_memoization(self, pipeline, datasets):
        """Regression: the fuzzy-value memo holds a weakref; pickling
        (e.g. into process-pool serving workers) must drop it, not
        raise TypeError."""
        import pickle

        pipeline.predict(datasets.test.X)  # populate the memo
        assert getattr(pipeline, "_fuzzy_cache", None) is not None
        clone = pickle.loads(pickle.dumps(pipeline))
        assert getattr(clone, "_fuzzy_cache", None) is None
        np.testing.assert_array_equal(
            pipeline.predict(datasets.test.X), clone.predict(datasets.test.X)
        )

    def test_k_mismatch_rejected(self, pipeline):
        from repro.core.nfc import NeuroFuzzyClassifier

        wrong_nfc = NeuroFuzzyClassifier(np.zeros((5, 3)), np.ones((5, 3)))
        with pytest.raises(ValueError):
            RPClassifierPipeline(pipeline.projection, wrong_nfc, 0.0)

    def test_alpha_validated(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.with_alpha(1.5)


class TestVariants:
    def test_with_alpha_changes_only_alpha(self, pipeline):
        other = pipeline.with_alpha(0.5)
        assert other.alpha == 0.5
        assert other.nfc is pipeline.nfc
        assert other.projection is pipeline.projection

    def test_with_shape(self, pipeline, datasets):
        linear = pipeline.with_shape("linear")
        assert linear.nfc.shape == "linear"
        # Predictions can differ but shapes agree.
        assert linear.predict(datasets.test.X[:10]).shape == (10,)

    def test_tuned_for_reaches_target(self, pipeline, datasets):
        tuned = pipeline.tuned_for(datasets.test, 0.97)
        report = tuned.evaluate(datasets.test)
        assert report.arr >= 0.97 - 1e-9

    def test_raising_alpha_trades_ndr_for_arr(self, pipeline, datasets):
        low = pipeline.with_alpha(0.0).evaluate(datasets.test)
        high = pipeline.with_alpha(0.9).evaluate(datasets.test)
        assert high.arr >= low.arr - 1e-12
        assert high.ndr <= low.ndr + 1e-12

    def test_sweep_output(self, pipeline, datasets):
        alphas, ndr, arr = pipeline.sweep(datasets.test, np.linspace(0, 1, 11))
        assert alphas.shape == (11,) and ndr.shape == (11,) and arr.shape == (11,)
        assert np.all(np.diff(ndr) <= 1e-12)
        assert np.all(np.diff(arr) >= -1e-12)


class TestEmbeddedConversion:
    def test_to_embedded_roundtrip(self, pipeline):
        classifier = pipeline.to_embedded()
        assert classifier.n_coefficients == pipeline.projection.n_coefficients
        assert classifier.n_inputs == pipeline.projection.n_inputs

    def test_to_embedded_shape_option(self, pipeline):
        tri = pipeline.to_embedded(shape="triangular")
        assert tri.nfc.shape == "triangular"
