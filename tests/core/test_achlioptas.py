"""Tests for Achlioptas random-projection matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.achlioptas import (
    AchlioptasMatrix,
    generate_achlioptas,
    johnson_lindenstrauss_bound,
    project,
    projection_distortion,
)


class TestGeneration:
    def test_shape(self):
        m = generate_achlioptas(8, 200, rng=0)
        assert m.matrix.shape == (8, 200)
        assert m.n_coefficients == 8
        assert m.n_inputs == 200

    def test_entries_are_ternary(self):
        m = generate_achlioptas(16, 100, rng=1)
        assert set(np.unique(m.matrix)).issubset({-1, 0, 1})

    def test_dtype_is_int8(self):
        m = generate_achlioptas(4, 10, rng=2)
        assert m.matrix.dtype == np.int8

    def test_element_distribution(self):
        m = generate_achlioptas(100, 1000, rng=3)
        flat = m.matrix.ravel()
        frac_plus = np.mean(flat == 1)
        frac_minus = np.mean(flat == -1)
        frac_zero = np.mean(flat == 0)
        assert frac_plus == pytest.approx(1 / 6, abs=0.01)
        assert frac_minus == pytest.approx(1 / 6, abs=0.01)
        assert frac_zero == pytest.approx(2 / 3, abs=0.01)

    def test_density_property(self):
        m = generate_achlioptas(50, 200, rng=4)
        assert m.density == pytest.approx(1 / 3, abs=0.03)
        assert m.nnz == np.count_nonzero(m.matrix)

    def test_seeded_reproducibility(self):
        a = generate_achlioptas(8, 50, rng=42)
        b = generate_achlioptas(8, 50, rng=42)
        assert np.array_equal(a.matrix, b.matrix)

    def test_different_seeds_differ(self):
        a = generate_achlioptas(8, 50, rng=1)
        b = generate_achlioptas(8, 50, rng=2)
        assert not np.array_equal(a.matrix, b.matrix)

    @pytest.mark.parametrize("k,d", [(0, 10), (10, 0), (-1, 5)])
    def test_invalid_dimensions(self, k, d):
        with pytest.raises(ValueError):
            generate_achlioptas(k, d)

    def test_generator_instance_accepted(self):
        rng = np.random.default_rng(7)
        m = generate_achlioptas(4, 20, rng=rng)
        assert m.matrix.shape == (4, 20)


class TestValidation:
    def test_rejects_non_ternary(self):
        with pytest.raises(ValueError, match="entries"):
            AchlioptasMatrix(np.array([[0, 2], [1, -1]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            AchlioptasMatrix(np.array([1, 0, -1]))

    def test_accepts_valid(self):
        m = AchlioptasMatrix(np.array([[1, 0], [-1, 1]]))
        assert m.matrix.dtype == np.int8


class TestProjection:
    def test_matches_dense_matmul(self, rng):
        m = generate_achlioptas(8, 50, rng=5)
        v = rng.standard_normal((20, 50))
        u = m.project(v)
        expected = v @ m.matrix.T.astype(float)
        np.testing.assert_allclose(u, expected)

    def test_single_vector(self, rng):
        m = generate_achlioptas(8, 50, rng=5)
        v = rng.standard_normal(50)
        u = m.project(v)
        assert u.shape == (8,)
        np.testing.assert_allclose(u, m.matrix.astype(float) @ v)

    def test_integer_input_gives_integer_output(self):
        m = generate_achlioptas(4, 10, rng=6)
        v = np.arange(10, dtype=np.int32)
        u = m.project(v)
        assert np.issubdtype(u.dtype, np.integer)

    def test_scaled_projection(self, rng):
        m = generate_achlioptas(8, 50, rng=5)
        v = rng.standard_normal(50)
        np.testing.assert_allclose(
            m.project(v, scaled=True), m.project(v) * np.sqrt(3 / 8)
        )

    def test_length_mismatch_raises(self):
        m = generate_achlioptas(4, 10, rng=0)
        with pytest.raises(ValueError, match="does not match"):
            m.project(np.zeros(11))

    def test_projection_is_linear(self, rng):
        m = generate_achlioptas(6, 30, rng=8)
        a = rng.standard_normal(30)
        b = rng.standard_normal(30)
        np.testing.assert_allclose(
            m.project(a + 2.0 * b), m.project(a) + 2.0 * m.project(b)
        )

    def test_function_form_matches_method(self, rng):
        m = generate_achlioptas(4, 10, rng=9)
        v = rng.standard_normal((3, 10))
        np.testing.assert_allclose(project(m.matrix, v), m.project(v))


class TestColumnSubsample:
    def test_shape_after_factor_4(self):
        m = generate_achlioptas(8, 200, rng=10)
        sub = m.column_subsample(4)
        assert sub.matrix.shape == (8, 50)

    def test_columns_match_decimation(self):
        m = generate_achlioptas(8, 200, rng=10)
        sub = m.column_subsample(4, phase=2)
        np.testing.assert_array_equal(sub.matrix, m.matrix[:, 2::4])

    def test_subsample_then_project_equals_project_decimated(self, rng):
        m = generate_achlioptas(8, 200, rng=11)
        v = rng.standard_normal(200)
        np.testing.assert_allclose(
            m.column_subsample(4).project(v[::4]),
            m.matrix[:, ::4].astype(float) @ v[::4],
        )

    @pytest.mark.parametrize("factor,phase", [(0, 0), (4, 4), (4, -1)])
    def test_invalid_arguments(self, factor, phase):
        m = generate_achlioptas(4, 20, rng=0)
        with pytest.raises(ValueError):
            m.column_subsample(factor, phase)


class TestJLBound:
    def test_bound_decreases_with_epsilon(self):
        assert johnson_lindenstrauss_bound(1000, 0.5) < johnson_lindenstrauss_bound(
            1000, 0.1
        )

    def test_bound_grows_with_points(self):
        assert johnson_lindenstrauss_bound(10**6, 0.2) > johnson_lindenstrauss_bound(
            100, 0.2
        )

    def test_paper_operating_point_below_bound(self):
        # The paper projects 12 000 training beats onto k = 8..32,
        # far below the JL guarantee even for epsilon = 0.9.
        assert johnson_lindenstrauss_bound(12000, 0.9) > 32

    @pytest.mark.parametrize("n,eps", [(1, 0.5), (10, 0.0), (10, 1.0)])
    def test_invalid_arguments(self, n, eps):
        with pytest.raises(ValueError):
            johnson_lindenstrauss_bound(n, eps)


class TestDistortion:
    def test_distortion_concentrates_for_large_k(self, rng):
        v = rng.standard_normal((50, 400))
        wide = generate_achlioptas(256, 400, rng=12)
        ratios = projection_distortion(wide.matrix, v, n_pairs=100, rng=13)
        assert abs(np.median(ratios) - 1.0) < 0.2

    def test_small_k_has_larger_spread(self, rng):
        v = rng.standard_normal((50, 400))
        narrow = generate_achlioptas(8, 400, rng=12)
        wide = generate_achlioptas(256, 400, rng=12)
        r_narrow = projection_distortion(narrow.matrix, v, n_pairs=200, rng=13)
        r_wide = projection_distortion(wide.matrix, v, n_pairs=200, rng=13)
        assert r_narrow.std() > r_wide.std()

    def test_requires_two_points(self):
        m = generate_achlioptas(4, 10, rng=0)
        with pytest.raises(ValueError):
            projection_distortion(m.matrix, np.zeros((1, 10)))


@settings(max_examples=25, deadline=None)
@given(k=st.integers(1, 16), d=st.integers(1, 64), seed=st.integers(0, 10_000))
def test_generate_always_valid(k, d, seed):
    """Property: any generated matrix is a valid ternary matrix."""
    m = generate_achlioptas(k, d, rng=seed)
    assert m.matrix.shape == (k, d)
    assert set(np.unique(m.matrix)).issubset({-1, 0, 1})


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_projection_preserves_zero(seed):
    """Property: the zero vector always projects to zero."""
    m = generate_achlioptas(8, 40, rng=seed)
    assert np.all(m.project(np.zeros(40)) == 0)
