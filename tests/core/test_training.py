"""Tests for the two-step training procedure."""

import numpy as np
import pytest

from repro.core.achlioptas import generate_achlioptas
from repro.core.genetic import GeneticConfig
from repro.core.training import (
    TrainingConfig,
    fit_nfc_for_projection,
    score_candidate,
    train_classifier,
    train_random_baseline,
)

TINY_GA = GeneticConfig(population_size=4, generations=2)


class TestConfig:
    def test_defaults_match_paper(self):
        config = TrainingConfig()
        assert config.n_coefficients == 8
        assert config.target_arr == 0.97
        assert config.genetic.population_size == 20
        assert config.genetic.generations == 30

    @pytest.mark.parametrize("kwargs", [{"n_coefficients": 0}, {"target_arr": 1.2}])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)


class TestInnerStep:
    def test_fit_nfc_shapes(self, datasets, training_config):
        projection = generate_achlioptas(8, datasets.train1.X.shape[1], rng=0)
        nfc = fit_nfc_for_projection(projection, datasets.train1, training_config)
        assert nfc.centers.shape == (8, 3)
        assert np.all(nfc.sigmas > 0)

    def test_score_candidate_in_unit_interval(self, datasets, training_config):
        projection = generate_achlioptas(8, datasets.train1.X.shape[1], rng=1)
        nfc = fit_nfc_for_projection(projection, datasets.train1, training_config)
        score, alpha = score_candidate(projection, nfc, datasets.train2, 0.97)
        assert 0.0 <= score <= 1.0
        assert 0.0 <= alpha <= 1.0


class TestTrainClassifier:
    def test_full_training_produces_consistent_artifacts(self, datasets):
        config = TrainingConfig(n_coefficients=8, genetic=TINY_GA, scg_iterations=50)
        trained = train_classifier(datasets.train1, datasets.train2, config, seed=0)
        assert trained.projection.n_coefficients == 8
        assert trained.projection.n_inputs == datasets.train1.X.shape[1]
        assert trained.nfc.n_coefficients == 8
        assert 0.0 <= trained.alpha_train <= 1.0
        assert 0.0 <= trained.score <= 1.0
        assert trained.ga_result is not None

    def test_fixed_projection_skips_ga(self, datasets):
        config = TrainingConfig(n_coefficients=8, genetic=TINY_GA, scg_iterations=50)
        projection = generate_achlioptas(8, datasets.train1.X.shape[1], rng=3)
        trained = train_classifier(
            datasets.train1, datasets.train2, config, projection=projection
        )
        assert trained.ga_result is None
        assert np.array_equal(trained.projection.matrix, projection.matrix)

    def test_ga_beats_or_matches_initial_population(self, datasets):
        config = TrainingConfig(n_coefficients=8, genetic=TINY_GA, scg_iterations=50)
        trained = train_classifier(datasets.train1, datasets.train2, config, seed=5)
        history = trained.ga_result.history
        assert trained.score >= history[0] - 1e-9

    def test_training_sets_must_share_beat_length(self, datasets):
        from repro.ecg.mitbih import LabeledBeats
        from repro.ecg.segmentation import BeatWindow

        short = LabeledBeats(
            datasets.train2.X[:, :100],
            datasets.train2.y,
            BeatWindow(50, 50),
            datasets.train2.fs,
        )
        with pytest.raises(ValueError):
            train_classifier(datasets.train1, short)

    def test_projection_width_validated(self, datasets):
        wrong = generate_achlioptas(8, 10, rng=0)
        with pytest.raises(ValueError):
            train_classifier(datasets.train1, datasets.train2, projection=wrong)

    def test_deterministic_given_seed(self, datasets):
        config = TrainingConfig(n_coefficients=4, genetic=TINY_GA, scg_iterations=30)
        a = train_classifier(datasets.train1, datasets.train2, config, seed=9)
        b = train_classifier(datasets.train1, datasets.train2, config, seed=9)
        assert np.array_equal(a.projection.matrix, b.projection.matrix)
        assert a.score == b.score


class TestRandomBaseline:
    def test_best_of_n(self, datasets):
        config = TrainingConfig(n_coefficients=8, genetic=TINY_GA, scg_iterations=40)
        baseline = train_random_baseline(
            datasets.train1, datasets.train2, config, n_draws=3, seed=1
        )
        assert baseline.ga_result is None
        assert 0.0 <= baseline.score <= 1.0

    def test_more_draws_never_hurt(self, datasets):
        config = TrainingConfig(n_coefficients=8, genetic=TINY_GA, scg_iterations=40)
        one = train_random_baseline(datasets.train1, datasets.train2, config, n_draws=1, seed=2)
        many = train_random_baseline(datasets.train1, datasets.train2, config, n_draws=4, seed=2)
        assert many.score >= one.score - 1e-12
