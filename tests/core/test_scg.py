"""Tests for the scaled conjugate gradient minimizer."""

import numpy as np
import pytest

from repro.core.scg import scg_minimize


def quadratic(A, b):
    """Convex quadratic objective 0.5 x'Ax - b'x with gradient."""

    def objective(x):
        g = A @ x - b
        f = 0.5 * float(x @ A @ x) - float(b @ x)
        return f, g

    return objective


class TestQuadratic:
    def test_solves_identity_quadratic(self):
        n = 5
        b = np.arange(1.0, n + 1.0)
        result = scg_minimize(quadratic(np.eye(n), b), np.zeros(n), max_iterations=100)
        np.testing.assert_allclose(result.x, b, atol=1e-4)
        assert result.converged

    def test_solves_ill_conditioned_quadratic(self):
        eigenvalues = np.array([1.0, 10.0, 100.0, 1000.0])
        A = np.diag(eigenvalues)
        b = np.ones(4)
        result = scg_minimize(quadratic(A, b), np.zeros(4), max_iterations=500, grad_tol=1e-8)
        np.testing.assert_allclose(result.x, b / eigenvalues, atol=1e-5)

    def test_starts_at_optimum(self):
        n = 3
        b = np.ones(n)
        result = scg_minimize(quadratic(np.eye(n), b), b.copy(), grad_tol=1e-8)
        assert result.converged
        assert result.n_iterations == 0


class TestRosenbrock:
    @staticmethod
    def _rosenbrock(x):
        a, c = 1.0, 100.0
        f = (a - x[0]) ** 2 + c * (x[1] - x[0] ** 2) ** 2
        g = np.array(
            [
                -2.0 * (a - x[0]) - 4.0 * c * x[0] * (x[1] - x[0] ** 2),
                2.0 * c * (x[1] - x[0] ** 2),
            ]
        )
        return f, g

    def test_makes_progress_on_rosenbrock(self):
        result = scg_minimize(self._rosenbrock, np.array([-1.2, 1.0]), max_iterations=500)
        f0, _ = self._rosenbrock(np.array([-1.2, 1.0]))
        assert result.fun < f0 * 1e-3

    def test_reaches_neighborhood_of_optimum(self):
        result = scg_minimize(
            self._rosenbrock, np.array([0.0, 0.0]), max_iterations=2000, grad_tol=1e-8
        )
        np.testing.assert_allclose(result.x, [1.0, 1.0], atol=0.05)


class TestBehaviour:
    def test_history_is_monotone_nonincreasing(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((8, 8))
        A = A @ A.T + 0.5 * np.eye(8)
        result = scg_minimize(quadratic(A, rng.standard_normal(8)), np.zeros(8))
        history = np.array(result.history)
        assert np.all(np.diff(history) <= 1e-10)

    def test_respects_iteration_budget(self):
        result = scg_minimize(
            quadratic(np.diag([1.0, 1e4]), np.ones(2)), np.zeros(2), max_iterations=3
        )
        assert result.n_iterations <= 3

    def test_rejects_non_flat_x0(self):
        with pytest.raises(ValueError, match="flat"):
            scg_minimize(quadratic(np.eye(2), np.ones(2)), np.zeros((2, 1)))

    def test_result_fields(self):
        result = scg_minimize(quadratic(np.eye(2), np.ones(2)), np.zeros(2))
        assert result.x.shape == (2,)
        assert isinstance(result.fun, float)
        assert isinstance(result.converged, bool)
        assert len(result.history) >= 1

    def test_does_not_mutate_x0(self):
        x0 = np.zeros(3)
        scg_minimize(quadratic(np.eye(3), np.ones(3)), x0)
        np.testing.assert_array_equal(x0, np.zeros(3))

    def test_flat_objective_terminates(self):
        def flat(x):
            return 0.0, np.zeros_like(x)

        result = scg_minimize(flat, np.ones(4))
        assert result.converged
        assert result.fun == 0.0

    def test_high_dimension(self):
        rng = np.random.default_rng(3)
        n = 60
        diag = np.linspace(1, 50, n)
        result = scg_minimize(
            quadratic(np.diag(diag), rng.standard_normal(n)),
            np.zeros(n),
            max_iterations=400,
            grad_tol=1e-6,
        )
        assert result.fun < quadratic(np.diag(diag), np.zeros(n))(np.zeros(n))[0] + 1e-6
        assert result.converged
