"""Tests for NDR / ARR metrics, confusion matrices and Pareto fronts."""

import numpy as np
import pytest

from repro.core.defuzz import UNKNOWN_LABEL
from repro.core.metrics import (
    ClassificationReport,
    abnormal_recognition_rate,
    activation_rate,
    ndr_at_arr,
    normal_discard_rate,
    pareto_front,
)


class TestNDR:
    def test_perfect(self):
        y = np.array([0, 0, 1, 2])
        assert normal_discard_rate(y, np.array([0, 0, 1, 2])) == 1.0

    def test_half(self):
        y = np.array([0, 0, 0, 0])
        pred = np.array([0, 0, 1, UNKNOWN_LABEL])
        assert normal_discard_rate(y, pred) == 0.5

    def test_unknown_normal_not_discarded(self):
        y = np.array([0])
        assert normal_discard_rate(y, np.array([UNKNOWN_LABEL])) == 0.0

    def test_no_normals(self):
        assert normal_discard_rate(np.array([1, 2]), np.array([0, 0])) == 1.0


class TestARR:
    def test_perfect(self):
        y = np.array([1, 2, 1])
        assert abnormal_recognition_rate(y, np.array([1, 2, UNKNOWN_LABEL])) == 1.0

    def test_unknown_counts_recognized(self):
        y = np.array([1])
        assert abnormal_recognition_rate(y, np.array([UNKNOWN_LABEL])) == 1.0

    def test_missed_abnormal(self):
        y = np.array([1, 2])
        assert abnormal_recognition_rate(y, np.array([0, 2])) == 0.5

    def test_cross_class_confusion_still_recognized(self):
        """A V classified as L still activates the delineator."""
        y = np.array([1])
        assert abnormal_recognition_rate(y, np.array([2])) == 1.0

    def test_no_abnormal(self):
        assert abnormal_recognition_rate(np.array([0, 0]), np.array([0, 1])) == 1.0


class TestActivation:
    def test_counts_non_normal_predictions(self):
        pred = np.array([0, 1, 2, UNKNOWN_LABEL])
        assert activation_rate(pred) == 0.75

    def test_empty(self):
        assert activation_rate(np.array([])) == 0.0


class TestReport:
    def test_confusion_shape_and_totals(self):
        y = np.array([0, 0, 1, 2, 1])
        pred = np.array([0, UNKNOWN_LABEL, 1, 2, 0])
        report = ClassificationReport.from_labels(y, pred)
        assert report.confusion.shape == (3, 4)
        assert report.confusion.sum() == y.size
        assert report.n_beats == 5

    def test_confusion_cells(self):
        y = np.array([0, 1])
        pred = np.array([UNKNOWN_LABEL, 2])
        report = ClassificationReport.from_labels(y, pred)
        assert report.confusion[0, 3] == 1  # N -> Unknown
        assert report.confusion[1, 2] == 1  # V -> L

    def test_metrics_consistency(self):
        y = np.array([0, 0, 1, 2])
        pred = np.array([0, 1, 1, 0])
        report = ClassificationReport.from_labels(y, pred)
        assert report.ndr == normal_discard_rate(y, pred)
        assert report.arr == abnormal_recognition_rate(y, pred)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ClassificationReport.from_labels(np.array([0]), np.array([0, 1]))

    def test_summary_contains_numbers(self):
        report = ClassificationReport.from_labels(np.array([0, 1]), np.array([0, 1]))
        text = report.summary()
        assert "NDR" in text and "ARR" in text and "n=2" in text


class TestParetoFront:
    def test_identifies_non_dominated(self):
        ndr = np.array([0.9, 0.8, 0.95, 0.7])
        arr = np.array([0.95, 0.97, 0.90, 0.99])
        front = pareto_front(ndr, arr)
        # (0.95, 0.90), (0.9, 0.95), (0.8, 0.97), (0.7, 0.99) are all
        # non-dominated here.
        assert set(front) == {0, 1, 2, 3}

    def test_dominated_point_excluded(self):
        ndr = np.array([0.9, 0.85])
        arr = np.array([0.95, 0.90])  # point 1 worse on both axes
        front = pareto_front(ndr, arr)
        assert 1 not in front

    def test_front_sorted_by_arr(self):
        rng = np.random.default_rng(0)
        ndr = rng.random(50)
        arr = rng.random(50)
        front = pareto_front(ndr, arr)
        assert np.all(np.diff(arr[front]) >= 0)
        # NDR must be decreasing along the front.
        assert np.all(np.diff(ndr[front]) <= 0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pareto_front(np.array([1.0]), np.array([1.0, 2.0]))


class TestNdrAtArr:
    def test_selects_best_feasible(self):
        ndr = np.array([0.95, 0.90, 0.85])
        arr = np.array([0.96, 0.97, 0.99])
        assert ndr_at_arr(ndr, arr, 0.97) == 0.90

    def test_infeasible_returns_nan(self):
        assert np.isnan(ndr_at_arr(np.array([0.9]), np.array([0.5]), 0.97))

    def test_boundary_inclusive(self):
        assert ndr_at_arr(np.array([0.8]), np.array([0.97]), 0.97) == 0.8
