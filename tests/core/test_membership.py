"""Tests for the float membership functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.membership import (
    GAUSSIAN_AT_S,
    LINEAR_FLOOR,
    S_FACTOR,
    gaussian_membership,
    linearization_error,
    linearized_membership,
    log_gaussian_membership,
    membership_by_name,
    triangular_membership,
)


def params(k=1, L=1, center=0.0, sigma=1.0):
    return np.full((k, L), center), np.full((k, L), sigma)


class TestGaussian:
    def test_peak_value_is_one(self):
        c, s = params()
        assert gaussian_membership(np.array([0.0]), c, s)[0, 0] == pytest.approx(1.0)

    def test_value_at_one_sigma(self):
        c, s = params()
        grade = gaussian_membership(np.array([1.0]), c, s)[0, 0]
        assert grade == pytest.approx(np.exp(-0.5))

    def test_symmetry(self):
        c, s = params()
        left = gaussian_membership(np.array([-2.0]), c, s)
        right = gaussian_membership(np.array([2.0]), c, s)
        assert left[0, 0] == pytest.approx(right[0, 0])

    def test_batch_shape(self):
        c, s = params(k=3, L=2)
        u = np.zeros((5, 3))
        assert gaussian_membership(u, c, s).shape == (5, 3, 2)

    def test_single_beat_shape(self):
        c, s = params(k=3, L=2)
        assert gaussian_membership(np.zeros(3), c, s).shape == (3, 2)

    def test_log_matches_exp(self):
        c, s = params(k=2, L=3, sigma=2.0)
        u = np.array([[0.5, -1.0]])
        np.testing.assert_allclose(
            np.exp(log_gaussian_membership(u, c, s)), gaussian_membership(u, c, s)
        )

    def test_nonpositive_sigma_rejected(self):
        c = np.zeros((1, 1))
        with pytest.raises(ValueError, match="positive"):
            gaussian_membership(np.array([0.0]), c, np.zeros((1, 1)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gaussian_membership(np.zeros(3), np.zeros((2, 2)), np.ones((2, 2)))


class TestLinearized:
    def test_peak_value_is_one(self):
        c, s = params()
        assert linearized_membership(np.array([0.0]), c, s)[0, 0] == pytest.approx(1.0)

    def test_value_at_S_matches_gaussian(self):
        c, s = params()
        grade = linearized_membership(np.array([S_FACTOR]), c, s)[0, 0]
        assert grade == pytest.approx(GAUSSIAN_AT_S, rel=1e-9)

    def test_floor_between_2S_and_4S(self):
        c, s = params()
        for x in (2.0 * S_FACTOR, 3.0 * S_FACTOR, 3.99 * S_FACTOR):
            assert linearized_membership(np.array([x]), c, s)[0, 0] == pytest.approx(
                LINEAR_FLOOR
            )

    def test_zero_beyond_4S(self):
        c, s = params()
        assert linearized_membership(np.array([4.0 * S_FACTOR]), c, s)[0, 0] == 0.0
        assert linearized_membership(np.array([10.0 * S_FACTOR]), c, s)[0, 0] == 0.0

    def test_piecewise_linear_inside_S(self):
        c, s = params()
        xs = (np.array([0.1, 0.2, 0.3]) * S_FACTOR)[:, np.newaxis]
        grades = linearized_membership(xs, c, s)[:, 0, 0]
        diffs = np.diff(grades)
        assert diffs[0] == pytest.approx(diffs[1], rel=1e-9)

    def test_monotone_decreasing_in_distance(self):
        c, s = params()
        xs = np.linspace(0, 5 * S_FACTOR, 200)[:, np.newaxis]
        grades = linearized_membership(xs, c, s)[:, 0, 0]
        assert np.all(np.diff(grades) <= 1e-12)

    def test_close_to_gaussian_within_S(self):
        c, s = params()
        xs = np.linspace(-S_FACTOR, S_FACTOR, 100)[:, np.newaxis]
        lin = linearized_membership(xs, c, s)[:, 0, 0]
        gau = gaussian_membership(xs, c, s)[:, 0, 0]
        assert np.max(np.abs(lin - gau)) < 0.25

    def test_center_offset(self):
        c, s = params(center=5.0)
        assert linearized_membership(np.array([5.0]), c, s)[0, 0] == pytest.approx(1.0)

    def test_sigma_scales_support(self):
        c, s = params(sigma=2.0)
        # Support extends to 4 * 2.35 * sigma = 18.8.
        assert linearized_membership(np.array([18.0]), c, s)[0, 0] > 0.0
        assert linearized_membership(np.array([19.0]), c, s)[0, 0] == 0.0


class TestTriangular:
    def test_peak_value_is_one(self):
        c, s = params()
        assert triangular_membership(np.array([0.0]), c, s)[0, 0] == pytest.approx(1.0)

    def test_zero_at_2S(self):
        c, s = params()
        assert triangular_membership(np.array([2.0 * S_FACTOR]), c, s)[0, 0] == 0.0

    def test_half_at_S(self):
        c, s = params()
        assert triangular_membership(np.array([S_FACTOR]), c, s)[0, 0] == pytest.approx(0.5)

    def test_no_positive_floor(self):
        """Unlike the 4-segment shape, the triangle truly reaches zero."""
        c, s = params()
        assert triangular_membership(np.array([3.0 * S_FACTOR]), c, s)[0, 0] == 0.0


class TestRegistry:
    @pytest.mark.parametrize("name", ["gaussian", "linear", "triangular"])
    def test_known_shapes(self, name):
        fn = membership_by_name(name)
        c, s = params()
        assert fn(np.array([0.0]), c, s)[0, 0] == pytest.approx(1.0)

    def test_unknown_shape(self):
        with pytest.raises(ValueError, match="unknown membership shape"):
            membership_by_name("sigmoid")


class TestLinearizationError:
    def test_linear_beats_triangular(self):
        lin = linearization_error(shape="linear")
        tri = linearization_error(shape="triangular")
        assert lin["rms_error"] < tri["rms_error"]

    def test_error_keys(self):
        e = linearization_error()
        assert set(e) == {"max_error", "mean_error", "rms_error"}
        assert 0 <= e["mean_error"] <= e["max_error"]

    def test_linear_error_is_small(self):
        assert linearization_error(shape="linear")["max_error"] < 0.1


@settings(max_examples=40, deadline=None)
@given(
    x=st.floats(-50, 50),
    center=st.floats(-10, 10),
    sigma=st.floats(0.1, 10),
)
def test_all_shapes_bounded(x, center, sigma):
    """Property: every MF maps any input into [0, 1]."""
    c = np.full((1, 1), center)
    s = np.full((1, 1), sigma)
    for name in ("gaussian", "linear", "triangular"):
        grade = membership_by_name(name)(np.array([x]), c, s)[0, 0]
        assert 0.0 <= grade <= 1.0


@settings(max_examples=40, deadline=None)
@given(
    r=st.floats(0, 30),
    center=st.floats(-5, 5),
    sigma=st.floats(0.2, 5),
)
def test_all_shapes_symmetric(r, center, sigma):
    """Property: every MF is symmetric around its center."""
    c = np.full((1, 1), center)
    s = np.full((1, 1), sigma)
    for name in ("gaussian", "linear", "triangular"):
        fn = membership_by_name(name)
        left = fn(np.array([center - r]), c, s)[0, 0]
        right = fn(np.array([center + r]), c, s)[0, 0]
        assert left == pytest.approx(right, rel=1e-9, abs=1e-12)
