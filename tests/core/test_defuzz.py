"""Tests for the defuzzification rule and alpha tuning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.defuzz import (
    DefuzzRule,
    NORMAL_LABEL,
    UNKNOWN_LABEL,
    defuzzify,
    is_abnormal,
    margins,
    sweep_alpha,
    tune_alpha,
)


class TestMargins:
    def test_clear_winner(self):
        winners, margin = margins(np.array([[0.9, 0.05, 0.05]]))
        assert winners[0] == 0
        assert margin[0] == pytest.approx((0.9 - 0.05) / 1.0)

    def test_tie_gives_zero_margin(self):
        _, margin = margins(np.array([[0.5, 0.5, 0.0]]))
        assert margin[0] == pytest.approx(0.0)

    def test_all_zero_row(self):
        winners, margin = margins(np.array([[0.0, 0.0, 0.0]]))
        assert margin[0] == -1.0

    def test_single_nonzero_class_has_unit_margin(self):
        _, margin = margins(np.array([[0.7, 0.0, 0.0]]))
        assert margin[0] == pytest.approx(1.0)

    def test_scale_invariance(self):
        f = np.array([[0.2, 0.5, 0.3]])
        _, m1 = margins(f)
        _, m2 = margins(1000.0 * f)
        assert m1[0] == pytest.approx(m2[0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            margins(np.array([[0.5, -0.1]]))

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            margins(np.array([[1.0]]))


class TestDefuzzify:
    def test_alpha_zero_is_argmax(self):
        fuzzy = np.array([[0.4, 0.35, 0.25], [0.1, 0.8, 0.1]])
        np.testing.assert_array_equal(defuzzify(fuzzy, 0.0), [0, 1])

    def test_low_confidence_becomes_unknown(self):
        fuzzy = np.array([[0.4, 0.35, 0.25]])
        # margin = 0.05; any alpha above that maps to Unknown.
        assert defuzzify(fuzzy, 0.1)[0] == UNKNOWN_LABEL

    def test_high_confidence_survives(self):
        fuzzy = np.array([[0.9, 0.05, 0.05]])
        assert defuzzify(fuzzy, 0.5)[0] == 0

    def test_all_zero_is_unknown_for_any_alpha(self):
        fuzzy = np.array([[0.0, 0.0, 0.0]])
        assert defuzzify(fuzzy, 0.0)[0] == UNKNOWN_LABEL

    def test_alpha_one_requires_single_class(self):
        lone = np.array([[0.7, 0.0, 0.0]])
        split = np.array([[0.7, 0.1, 0.0]])
        assert defuzzify(lone, 1.0)[0] == 0
        assert defuzzify(split, 1.0)[0] == UNKNOWN_LABEL

    @pytest.mark.parametrize("alpha", [-0.1, 1.5])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ValueError):
            defuzzify(np.array([[1.0, 0.0]]), alpha)

    def test_rule_object(self):
        rule = DefuzzRule(0.2)
        assert rule(np.array([[0.9, 0.05, 0.05]]))[0] == 0
        with pytest.raises(ValueError):
            DefuzzRule(2.0)


class TestIsAbnormal:
    def test_unknown_counts_abnormal(self):
        labels = np.array([NORMAL_LABEL, 1, 2, UNKNOWN_LABEL])
        np.testing.assert_array_equal(is_abnormal(labels), [False, True, True, True])


def _synthetic_fuzzy(rng, n=400):
    """Fuzzy values with a mix of confident and borderline beats."""
    y = rng.integers(0, 3, size=n)
    fuzzy = rng.random((n, 3)) * 0.3
    confident = rng.random(n) < 0.7
    fuzzy[np.arange(n)[confident], y[confident]] += rng.random(confident.sum()) * 2 + 0.5
    return fuzzy, y


class TestTuneAlpha:
    def test_returns_zero_when_target_met(self, rng):
        # All abnormal beats already classified abnormal.
        fuzzy = np.array([[0.1, 0.9, 0.0], [0.0, 0.1, 0.9], [0.9, 0.1, 0.0]])
        y = np.array([1, 2, 0])
        assert tune_alpha(fuzzy, y, 0.97) == 0.0

    def test_meets_target_exactly_on_data(self, rng):
        fuzzy, y = _synthetic_fuzzy(rng)
        for target in (0.9, 0.95, 0.99):
            alpha = tune_alpha(fuzzy, y, target)
            labels = defuzzify(fuzzy, alpha)
            abnormal = y != NORMAL_LABEL
            arr = np.mean(is_abnormal(labels)[abnormal])
            assert arr >= target - 1e-9

    def test_minimality(self, rng):
        """A smaller alpha would miss the target (alpha is tight)."""
        fuzzy, y = _synthetic_fuzzy(rng)
        target = 0.97
        alpha = tune_alpha(fuzzy, y, target)
        if 0.0 < alpha < 1.0:
            slightly_less = alpha * 0.98
            labels = defuzzify(fuzzy, slightly_less)
            abnormal = y != NORMAL_LABEL
            arr = np.mean(is_abnormal(labels)[abnormal])
            assert arr < target

    def test_no_abnormal_beats(self):
        fuzzy = np.array([[0.9, 0.1, 0.0]])
        assert tune_alpha(fuzzy, np.array([0]), 0.97) == 0.0

    def test_impossible_target_returns_one(self):
        # One abnormal beat confidently classified N (single non-zero
        # class): unrecoverable for any alpha <= 1.
        fuzzy = np.array([[1.0, 0.0, 0.0]])
        assert tune_alpha(fuzzy, np.array([1]), 1.0) == 1.0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            tune_alpha(np.array([[1.0, 0.0]]), np.array([0]), 1.5)


class TestSweepAlpha:
    def test_matches_bruteforce(self, rng):
        fuzzy, y = _synthetic_fuzzy(rng, n=200)
        alphas = np.linspace(0, 1, 11)
        _, ndr, arr = sweep_alpha(fuzzy, y, alphas)
        normal = y == NORMAL_LABEL
        abnormal = ~normal
        for i, alpha in enumerate(alphas):
            labels = defuzzify(fuzzy, alpha)
            ndr_ref = np.mean(labels[normal] == NORMAL_LABEL)
            arr_ref = np.mean(is_abnormal(labels)[abnormal])
            assert ndr[i] == pytest.approx(ndr_ref)
            assert arr[i] == pytest.approx(arr_ref)

    def test_monotonicity(self, rng):
        fuzzy, y = _synthetic_fuzzy(rng)
        _, ndr, arr = sweep_alpha(fuzzy, y)
        assert np.all(np.diff(ndr) <= 1e-12)
        assert np.all(np.diff(arr) >= -1e-12)

    def test_default_grid(self, rng):
        fuzzy, y = _synthetic_fuzzy(rng)
        alphas, ndr, arr = sweep_alpha(fuzzy, y)
        assert alphas.shape == ndr.shape == arr.shape
        assert alphas[0] == 0.0 and alphas[-1] == 1.0


@settings(max_examples=30, deadline=None)
@given(
    fuzzy=hnp.arrays(
        float,
        st.tuples(st.integers(1, 30), st.just(3)),
        elements=st.floats(0, 1000, allow_nan=False),
    ),
    alpha=st.floats(0, 1),
)
def test_defuzzify_labels_in_domain(fuzzy, alpha):
    """Property: labels are always a class index or Unknown."""
    labels = defuzzify(fuzzy, alpha)
    assert set(np.unique(labels)).issubset({UNKNOWN_LABEL, 0, 1, 2})


@settings(max_examples=30, deadline=None)
@given(
    fuzzy=hnp.arrays(
        float,
        st.tuples(st.integers(2, 40), st.just(3)),
        elements=st.floats(0, 100, allow_nan=False),
    ),
    alpha_pair=st.tuples(st.floats(0, 1), st.floats(0, 1)),
)
def test_unknown_set_grows_with_alpha(fuzzy, alpha_pair):
    """Property: raising alpha can only grow the Unknown set."""
    lo, hi = sorted(alpha_pair)
    unknown_lo = defuzzify(fuzzy, lo) == UNKNOWN_LABEL
    unknown_hi = defuzzify(fuzzy, hi) == UNKNOWN_LABEL
    assert np.all(unknown_hi | ~unknown_lo | unknown_lo)
    # Every beat unknown at lo stays unknown at hi.
    assert np.all(~unknown_lo | unknown_hi)
