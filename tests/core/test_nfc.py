"""Tests for the neuro-fuzzy classifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nfc import NeuroFuzzyClassifier


def gaussian_blobs(rng, n_per_class=80, k=4, separation=4.0):
    """Three well-separated diagonal-Gaussian clusters."""
    centers = separation * np.array([[1.0] * k, [-1.0] * k, [1.0, -1.0] * (k // 2)])
    U = np.concatenate(
        [centers[c] + rng.standard_normal((n_per_class, k)) for c in range(3)]
    )
    y = np.repeat(np.arange(3), n_per_class)
    return U, y


class TestConstruction:
    def test_valid(self):
        nfc = NeuroFuzzyClassifier(np.zeros((4, 3)), np.ones((4, 3)))
        assert nfc.n_coefficients == 4
        assert nfc.n_classes == 3

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            NeuroFuzzyClassifier(np.zeros((4, 3)), np.ones((3, 4)))

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            NeuroFuzzyClassifier(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_rejects_unknown_shape(self):
        with pytest.raises(ValueError):
            NeuroFuzzyClassifier(np.zeros((2, 3)), np.ones((2, 3)), shape="cubic")

    def test_with_shape(self):
        nfc = NeuroFuzzyClassifier(np.zeros((2, 3)), np.ones((2, 3)))
        linear = nfc.with_shape("linear")
        assert linear.shape == "linear"
        assert nfc.shape == "gaussian"  # original unchanged
        np.testing.assert_array_equal(linear.centers, nfc.centers)


class TestForward:
    def test_fuzzy_values_unit_max(self, rng):
        U, y = gaussian_blobs(rng)
        nfc = NeuroFuzzyClassifier.initialize(U, y)
        values = nfc.fuzzy_values(U)
        np.testing.assert_allclose(values.max(axis=1), 1.0)

    def test_fuzzy_values_nonnegative(self, rng):
        U, y = gaussian_blobs(rng)
        nfc = NeuroFuzzyClassifier.initialize(U, y)
        for shape in ("gaussian", "linear", "triangular"):
            assert np.all(nfc.with_shape(shape).fuzzy_values(U) >= 0.0)

    def test_single_beat_shape(self, rng):
        U, y = gaussian_blobs(rng)
        nfc = NeuroFuzzyClassifier.initialize(U, y)
        assert nfc.fuzzy_values(U[0]).shape == (3,)

    def test_posterior_sums_to_one(self, rng):
        U, y = gaussian_blobs(rng)
        nfc = NeuroFuzzyClassifier.initialize(U, y)
        posterior = nfc.posterior(U)
        np.testing.assert_allclose(posterior.sum(axis=1), 1.0)

    def test_membership_grades_shape(self, rng):
        U, y = gaussian_blobs(rng, k=6)
        nfc = NeuroFuzzyClassifier.initialize(U, y)
        assert nfc.membership_grades(U[:10]).shape == (10, 6, 3)

    def test_log_fuzzy_gaussian_only(self):
        nfc = NeuroFuzzyClassifier(np.zeros((2, 3)), np.ones((2, 3)), shape="linear")
        with pytest.raises(ValueError):
            nfc.log_fuzzy_values(np.zeros((1, 2)))

    def test_no_underflow_with_many_coefficients(self, rng):
        """32 Gaussian MFs on far-away inputs must not underflow to NaN."""
        k = 32
        nfc = NeuroFuzzyClassifier(np.zeros((k, 3)), np.ones((k, 3)))
        U = np.full((5, k), 50.0)
        values = nfc.fuzzy_values(U)
        assert np.all(np.isfinite(values))
        np.testing.assert_allclose(values.max(axis=1), 1.0)

    def test_triangular_all_zero_row(self):
        """Inputs beyond every triangle's support give an all-zero row."""
        nfc = NeuroFuzzyClassifier(
            np.zeros((2, 3)), np.ones((2, 3)), shape="triangular"
        )
        values = nfc.fuzzy_values(np.full((1, 2), 100.0))
        assert np.all(values == 0.0)


class TestInitialize:
    def test_centers_match_class_means(self, rng):
        U, y = gaussian_blobs(rng)
        nfc = NeuroFuzzyClassifier.initialize(U, y)
        for c in range(3):
            np.testing.assert_allclose(nfc.centers[:, c], U[y == c].mean(axis=0))

    def test_sigma_floor(self, rng):
        U = np.zeros((30, 4))  # degenerate class: zero variance
        y = np.zeros(30, dtype=int)
        nfc = NeuroFuzzyClassifier.initialize(U, y, n_classes=3)
        assert np.all(nfc.sigmas > 0)

    def test_empty_class_gets_defaults(self, rng):
        U = rng.standard_normal((20, 3))
        y = np.zeros(20, dtype=int)  # classes 1, 2 empty
        nfc = NeuroFuzzyClassifier.initialize(U, y, n_classes=3)
        assert np.all(np.isfinite(nfc.centers))
        assert np.all(nfc.sigmas > 0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            NeuroFuzzyClassifier.initialize(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            NeuroFuzzyClassifier.initialize(np.zeros((5, 2)), np.zeros(4, dtype=int))


class TestFit:
    def test_fit_separates_blobs(self, rng):
        U, y = gaussian_blobs(rng)
        nfc = NeuroFuzzyClassifier.fit(U, y, max_iterations=60)
        predictions = nfc.posterior(U).argmax(axis=1)
        assert np.mean(predictions == y) > 0.95

    def test_fit_improves_over_initialization(self, rng):
        U, y = gaussian_blobs(rng, separation=1.2)

        def loss(nfc):
            posterior = nfc.posterior(U)
            return -np.mean(np.log(posterior[np.arange(y.size), y] + 1e-12))

        initial = NeuroFuzzyClassifier.initialize(U, y)
        fitted = NeuroFuzzyClassifier.fit(U, y, max_iterations=80)
        assert loss(fitted) <= loss(initial) + 1e-9

    def test_fit_returns_gaussian_shape(self, rng):
        U, y = gaussian_blobs(rng)
        assert NeuroFuzzyClassifier.fit(U, y, max_iterations=5).shape == "gaussian"

    def test_fit_sigma_positive(self, rng):
        U, y = gaussian_blobs(rng)
        nfc = NeuroFuzzyClassifier.fit(U, y, max_iterations=40)
        assert np.all(nfc.sigmas > 0)

    def test_regularization_limits_sigma_drift(self, rng):
        U, y = gaussian_blobs(rng, separation=8.0)
        tight = NeuroFuzzyClassifier.fit(U, y, max_iterations=60, sigma_regularization=10.0)
        initial = NeuroFuzzyClassifier.initialize(U, y)
        ratio = tight.sigmas / initial.sigmas
        assert np.all(ratio > 0.5) and np.all(ratio < 2.0)

    def test_fit_reaches_local_optimum(self, rng):
        """Small random perturbations of the fitted parameters must not
        improve the (unregularized) training loss — a derivative-free
        probe that SCG converged to a stationary point."""
        U, y = gaussian_blobs(rng, separation=1.5, n_per_class=60)
        fitted = NeuroFuzzyClassifier.fit(
            U, y, max_iterations=400, sigma_regularization=0.0
        )

        def loss(nfc):
            posterior = nfc.posterior(U)
            return -np.mean(np.log(posterior[np.arange(y.size), y] + 1e-300))

        base = loss(fitted)
        probe_rng = np.random.default_rng(0)
        improvements = 0
        for _ in range(30):
            scale = 10 ** probe_rng.uniform(-3, -1)
            candidate = NeuroFuzzyClassifier(
                fitted.centers + scale * probe_rng.standard_normal(fitted.centers.shape),
                fitted.sigmas
                * np.exp(scale * probe_rng.standard_normal(fitted.sigmas.shape)),
            )
            if loss(candidate) < base - 1e-7:
                improvements += 1
        # A stationary point may still admit rare lucky directions on a
        # shallow plateau; a true non-optimum would be improved by most
        # random probes.
        assert improvements <= 3


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500), shape=st.sampled_from(["gaussian", "linear", "triangular"]))
def test_fuzzy_values_bounded(seed, shape):
    """Property: fuzzy values always lie in [0, 1] after normalization."""
    rng = np.random.default_rng(seed)
    nfc = NeuroFuzzyClassifier(
        rng.standard_normal((4, 3)), 0.5 + rng.random((4, 3)), shape=shape
    )
    values = nfc.fuzzy_values(rng.standard_normal((10, 4)) * 5)
    assert np.all(values >= 0.0) and np.all(values <= 1.0 + 1e-12)
