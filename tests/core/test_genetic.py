"""Tests for the genetic projection optimizer."""

import numpy as np
import pytest

from repro.core.achlioptas import AchlioptasMatrix, generate_achlioptas
from repro.core.genetic import (
    GeneticConfig,
    crossover_rows,
    mutate,
    optimize_projection,
)


class TestConfig:
    def test_paper_defaults(self):
        config = GeneticConfig()
        assert config.population_size == 20
        assert config.generations == 30

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"generations": 0},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"tournament_size": 0},
            {"elitism": 25},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GeneticConfig(**kwargs)


class TestCrossover:
    def test_rows_come_from_parents(self, rng):
        a = generate_achlioptas(6, 20, rng=0)
        b = generate_achlioptas(6, 20, rng=1)
        child = crossover_rows(a, b, rng)
        for row in range(6):
            from_a = np.array_equal(child.matrix[row], a.matrix[row])
            from_b = np.array_equal(child.matrix[row], b.matrix[row])
            assert from_a or from_b

    def test_child_is_valid(self, rng):
        a = generate_achlioptas(6, 20, rng=0)
        b = generate_achlioptas(6, 20, rng=1)
        child = crossover_rows(a, b, rng)
        assert set(np.unique(child.matrix)).issubset({-1, 0, 1})

    def test_shape_mismatch(self, rng):
        a = generate_achlioptas(6, 20, rng=0)
        b = generate_achlioptas(6, 21, rng=1)
        with pytest.raises(ValueError):
            crossover_rows(a, b, rng)


class TestMutation:
    def test_zero_rate_is_identity(self, rng):
        m = generate_achlioptas(6, 20, rng=0)
        assert mutate(m, 0.0, rng) is m

    def test_mutated_stays_valid(self, rng):
        m = generate_achlioptas(6, 20, rng=0)
        child = mutate(m, 0.5, rng)
        assert set(np.unique(child.matrix)).issubset({-1, 0, 1})

    def test_high_rate_changes_entries(self, rng):
        m = generate_achlioptas(10, 50, rng=0)
        child = mutate(m, 0.9, rng)
        assert not np.array_equal(child.matrix, m.matrix)

    def test_low_rate_changes_few_entries(self, rng):
        m = generate_achlioptas(10, 100, rng=0)
        child = mutate(m, 0.01, rng)
        changed = np.mean(child.matrix != m.matrix)
        assert changed < 0.05

    def test_mutation_preserves_achlioptas_distribution(self):
        rng = np.random.default_rng(5)
        m = generate_achlioptas(50, 200, rng=0)
        child = mutate(m, 1.0, rng)  # resample everything
        frac_zero = np.mean(child.matrix == 0)
        assert frac_zero == pytest.approx(2 / 3, abs=0.02)

    def test_invalid_rate(self, rng):
        m = generate_achlioptas(2, 4, rng=0)
        with pytest.raises(ValueError):
            mutate(m, 1.1, rng)


def sparsity_fitness(m: AchlioptasMatrix) -> float:
    """Toy fitness: reward +1-heavy matrices (has a known optimum)."""
    return float(np.mean(m.matrix == 1))


class TestOptimize:
    def test_improves_fitness(self):
        result = optimize_projection(
            sparsity_fitness,
            n_coefficients=4,
            n_inputs=30,
            config=GeneticConfig(population_size=8, generations=10, mutation_rate=0.05),
            rng=0,
        )
        assert result.best_fitness > result.history[0]

    def test_history_monotone_with_elitism(self):
        result = optimize_projection(
            sparsity_fitness,
            n_coefficients=4,
            n_inputs=30,
            config=GeneticConfig(population_size=8, generations=10, elitism=2),
            rng=1,
        )
        history = np.array(result.history)
        assert np.all(np.diff(history) >= 0)

    def test_history_length(self):
        config = GeneticConfig(population_size=6, generations=7)
        result = optimize_projection(
            sparsity_fitness, n_coefficients=3, n_inputs=10, config=config, rng=2
        )
        assert len(result.history) == config.generations + 1

    def test_best_is_valid_matrix(self):
        result = optimize_projection(
            sparsity_fitness,
            n_coefficients=5,
            n_inputs=12,
            config=GeneticConfig(population_size=4, generations=3),
            rng=3,
        )
        assert result.best.matrix.shape == (5, 12)
        assert set(np.unique(result.best.matrix)).issubset({-1, 0, 1})

    def test_evaluation_budget(self):
        config = GeneticConfig(population_size=6, generations=4, elitism=2)
        result = optimize_projection(
            sparsity_fitness, n_coefficients=3, n_inputs=8, config=config, rng=4
        )
        expected = 6 + 4 * (6 - 2)  # initial pop + children per generation
        assert result.evaluations == expected

    def test_warm_start(self):
        seeded = generate_achlioptas(3, 8, rng=9)
        result = optimize_projection(
            sparsity_fitness,
            n_coefficients=3,
            n_inputs=8,
            config=GeneticConfig(population_size=4, generations=1),
            rng=5,
            initial_population=[seeded],
        )
        assert result.best_fitness >= sparsity_fitness(seeded) - 1e-12

    def test_warm_start_dimension_check(self):
        wrong = generate_achlioptas(2, 8, rng=0)
        with pytest.raises(ValueError):
            optimize_projection(
                sparsity_fitness,
                n_coefficients=3,
                n_inputs=8,
                initial_population=[wrong],
            )

    def test_deterministic_for_seed(self):
        kwargs = dict(
            n_coefficients=3,
            n_inputs=10,
            config=GeneticConfig(population_size=4, generations=3),
        )
        a = optimize_projection(sparsity_fitness, rng=11, **kwargs)
        b = optimize_projection(sparsity_fitness, rng=11, **kwargs)
        assert np.array_equal(a.best.matrix, b.best.matrix)
        assert a.history == b.history
