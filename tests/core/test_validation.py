"""Tests for bootstrap intervals and seed sweeps."""

import numpy as np
import pytest

from repro.core.genetic import GeneticConfig
from repro.core.training import TrainingConfig
from repro.core.validation import (
    MetricInterval,
    bootstrap_metrics,
    seed_sweep,
)


def labels_with_known_rates(rng, n=2000, ndr=0.9, arr=0.95):
    """Construct a label pair with exact NDR/ARR."""
    y = np.zeros(n, dtype=np.int64)
    y[: n // 3] = 1
    pred = y.copy()
    normal = np.flatnonzero(y == 0)
    flip_n = normal[: int(round((1 - ndr) * normal.size))]
    pred[flip_n] = -1  # Unknown: not discarded, still "flagged"
    abnormal = np.flatnonzero(y != 0)
    flip_a = abnormal[: int(round((1 - arr) * abnormal.size))]
    pred[flip_a] = 0
    return y, pred


class TestMetricInterval:
    def test_contains_and_width(self):
        interval = MetricInterval(0.9, 0.85, 0.95, 0.95)
        assert interval.contains(0.9)
        assert not interval.contains(0.96)
        assert interval.width == pytest.approx(0.10)


class TestBootstrap:
    def test_point_estimates_exact(self, rng):
        y, pred = labels_with_known_rates(rng)
        intervals = bootstrap_metrics(y, pred, n_resamples=200, rng=0)
        assert intervals["ndr"].point == pytest.approx(0.9, abs=0.01)
        assert intervals["arr"].point == pytest.approx(0.95, abs=0.01)

    def test_interval_contains_point(self, rng):
        y, pred = labels_with_known_rates(rng)
        intervals = bootstrap_metrics(y, pred, n_resamples=300, rng=1)
        for interval in intervals.values():
            assert interval.lower <= interval.point <= interval.upper

    def test_interval_narrows_with_data(self, rng):
        y_small, pred_small = labels_with_known_rates(rng, n=300)
        y_large, pred_large = labels_with_known_rates(rng, n=30000)
        small = bootstrap_metrics(y_small, pred_small, n_resamples=300, rng=2)
        large = bootstrap_metrics(y_large, pred_large, n_resamples=300, rng=2)
        assert large["ndr"].width < small["ndr"].width

    def test_higher_confidence_wider(self, rng):
        y, pred = labels_with_known_rates(rng)
        narrow = bootstrap_metrics(y, pred, n_resamples=400, confidence=0.8, rng=3)
        wide = bootstrap_metrics(y, pred, n_resamples=400, confidence=0.99, rng=3)
        assert wide["ndr"].width >= narrow["ndr"].width

    def test_validation(self, rng):
        y, pred = labels_with_known_rates(rng, n=50)
        with pytest.raises(ValueError):
            bootstrap_metrics(y, pred, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_metrics(y, pred, n_resamples=5)
        with pytest.raises(ValueError):
            bootstrap_metrics(y[:10], pred)

    def test_deterministic_for_seed(self, rng):
        y, pred = labels_with_known_rates(rng)
        a = bootstrap_metrics(y, pred, n_resamples=100, rng=7)
        b = bootstrap_metrics(y, pred, n_resamples=100, rng=7)
        assert a["ndr"] == b["ndr"]


class TestSeedSweep:
    def test_sweep_produces_spread(self, datasets):
        config = TrainingConfig(
            n_coefficients=8,
            genetic=GeneticConfig(population_size=4, generations=2),
            scg_iterations=40,
        )
        result = seed_sweep(
            datasets.train1, datasets.train2, datasets.test, config, seeds=(0, 1)
        )
        assert result.ndr.shape == (2,)
        assert np.all(result.ndr >= 0) and np.all(result.ndr <= 1)
        assert np.all(result.arr >= 0.9)  # target enforced per seed
        assert "NDR" in result.summary()

    def test_requires_seeds(self, datasets):
        config = TrainingConfig(n_coefficients=4)
        with pytest.raises(ValueError):
            seed_sweep(datasets.train1, datasets.train2, datasets.test, config, seeds=())
