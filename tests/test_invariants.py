"""Cross-layer property tests: invariants spanning multiple subsystems.

Module-level unit tests check each component in isolation; the
properties here pin down the *relations between layers* the system's
correctness rests on (float/integer rule agreement, representation
round-trips, translation invariance of the membership layer, tuning
optimality).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.achlioptas import generate_achlioptas
from repro.core.defuzz import UNKNOWN_LABEL, defuzzify, is_abnormal, tune_alpha
from repro.core.nfc import NeuroFuzzyClassifier
from repro.core.scg import scg_minimize
from repro.fixedpoint.integer_nfc import integer_defuzzify
from repro.fixedpoint.packed_matrix import PackedTernaryMatrix


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(1, 12),
    d=st.integers(1, 64),
    n=st.integers(1, 8),
)
def test_packed_and_dense_projection_agree(seed, k, d, n):
    """The 2-bit representation is semantically invisible."""
    rng = np.random.default_rng(seed)
    matrix = generate_achlioptas(k, d, rng=seed)
    packed = PackedTernaryMatrix.pack(matrix)
    beats = rng.integers(-1024, 1024, size=(n, d))
    np.testing.assert_array_equal(packed.project(beats), matrix.project(beats))


@settings(max_examples=30, deadline=None)
@given(
    fuzzy=hnp.arrays(
        np.int64,
        st.tuples(st.integers(1, 40), st.just(3)),
        elements=st.integers(0, 1 << 20),
    )
)
def test_integer_defuzzify_alpha_zero_is_argmax(fuzzy):
    """At alpha = 0 the integer rule reduces to argmax (or Unknown when
    every class vanished)."""
    labels = integer_defuzzify(fuzzy, 0)
    winners = fuzzy.argmax(axis=1)
    alive = fuzzy.sum(axis=1) > 0
    np.testing.assert_array_equal(labels[alive], winners[alive])
    assert np.all(labels[~alive] == UNKNOWN_LABEL)


@settings(max_examples=25, deadline=None)
@given(
    fuzzy=hnp.arrays(
        np.int64,
        st.tuples(st.integers(2, 40), st.just(3)),
        elements=st.integers(0, 1 << 16),
    ),
    alpha_steps=st.integers(1, 16),
)
def test_float_and_integer_rules_agree_off_threshold(fuzzy, alpha_steps):
    """Away from exact threshold ties, the float rule on the same
    integers and the Q16 integer rule give identical labels."""
    alpha = alpha_steps / 17.0
    alpha_q16 = int(round(alpha * 65536))
    integer_labels = integer_defuzzify(fuzzy, alpha_q16)
    float_labels = defuzzify(fuzzy.astype(float), alpha_q16 / 65536.0)
    # Exclude rows where the margin sits exactly on the threshold
    # (those may legitimately differ by float rounding).
    order = np.sort(fuzzy, axis=1)
    m1, m2 = order[:, -1], order[:, -2]
    total = fuzzy.sum(axis=1)
    on_threshold = ((m1 - m2) << 16) == alpha_q16 * total
    np.testing.assert_array_equal(
        integer_labels[~on_threshold], float_labels[~on_threshold]
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 5000),
    shift=st.floats(-50, 50, allow_nan=False),
)
def test_nfc_translation_invariance(seed, shift):
    """Shifting inputs and centers together leaves the NFC unchanged
    (grades depend only on u - c), for every membership shape."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 2, size=(4, 3))
    sigmas = 0.5 + rng.random((4, 3))
    U = rng.normal(0, 3, size=(6, 4))
    for shape in ("gaussian", "linear", "triangular"):
        nfc = NeuroFuzzyClassifier(centers, sigmas, shape=shape)
        moved = NeuroFuzzyClassifier(centers + shift, sigmas, shape=shape)
        np.testing.assert_allclose(
            nfc.fuzzy_values(U), moved.fuzzy_values(U + shift), atol=1e-9
        )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), target=st.floats(0.5, 0.999))
def test_tune_alpha_feasible_and_minimal(seed, target):
    """tune_alpha returns the smallest feasible alpha: the target is
    met at the returned value and (when interior) missed just below."""
    rng = np.random.default_rng(seed)
    n = 300
    fuzzy = rng.random((n, 3))
    y = rng.integers(0, 3, size=n)
    alpha = tune_alpha(fuzzy, y, target)
    abnormal = y != 0
    if abnormal.sum() == 0:
        assert alpha == 0.0
        return

    def arr_at(a):
        labels = defuzzify(fuzzy, a)
        return float(np.mean(is_abnormal(labels)[abnormal]))

    if alpha < 1.0:
        assert arr_at(alpha) >= target - 1e-12
    if 0.0 < alpha < 1.0:
        assert arr_at(alpha * (1 - 1e-6)) < target


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000), n=st.integers(2, 10))
def test_scg_solves_random_convex_quadratics(seed, n):
    """SCG reaches the analytic minimum of any well-conditioned PSD
    quadratic it is given."""
    rng = np.random.default_rng(seed)
    root = rng.standard_normal((n, n))
    A = root @ root.T + np.eye(n)  # eigenvalues >= 1
    b = rng.standard_normal(n)

    def objective(x):
        return 0.5 * float(x @ A @ x) - float(b @ x), A @ x - b

    result = scg_minimize(objective, np.zeros(n), max_iterations=500, grad_tol=1e-8)
    expected = np.linalg.solve(A, b)
    np.testing.assert_allclose(result.x, expected, atol=1e-4)


class TestEndToEndInvariants:
    def test_embedded_prediction_deterministic(self, embedded_classifier, embedded_datasets):
        _, _, test = embedded_datasets
        a = embedded_classifier.predict(test.X[:300])
        b = embedded_classifier.predict(test.X[:300])
        np.testing.assert_array_equal(a, b)

    def test_pipeline_prediction_deterministic(self, pipeline, datasets):
        a = pipeline.predict(datasets.test.X[:300])
        b = pipeline.predict(datasets.test.X[:300])
        np.testing.assert_array_equal(a, b)

    def test_row_permutation_of_projection_permutes_nothing_observable(
        self, pipeline, datasets
    ):
        """Permuting coefficients together with their MFs is a no-op."""
        from repro.core.pipeline import RPClassifierPipeline
        from repro.core.achlioptas import AchlioptasMatrix

        rng = np.random.default_rng(0)
        k = pipeline.projection.n_coefficients
        perm = rng.permutation(k)
        permuted = RPClassifierPipeline(
            AchlioptasMatrix(pipeline.projection.matrix[perm]),
            NeuroFuzzyClassifier(
                pipeline.nfc.centers[perm], pipeline.nfc.sigmas[perm], pipeline.nfc.shape
            ),
            pipeline.alpha,
        )
        X = datasets.test.X[:200]
        np.testing.assert_array_equal(pipeline.predict(X), permuted.predict(X))
