"""Autoscaling layer: placement policies, AutoBalancer, Autoscaler.

Three contracts on top of the sharded tier's bit-exactness:

* placement policies put sessions where they claim to
  (:data:`~repro.serving.PLACEMENTS`, validated like executors);
* the :class:`~repro.serving.AutoBalancer` hysteresis *converges*:
  under any seeded static load, migrations reach a fixed point (no
  ping-ponging) within a bounded number of ticks;
* the elastic pool drains losslessly: ``retire_worker`` of a worker
  with backlogged (blocked-inbox) sessions migrates them with no
  event loss, and the ``stats()`` schema the policies read is pinned.
"""

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import (
    PLACEMENTS,
    AutoBalancer,
    Autoscaler,
    ShardedGateway,
    serve_autoscaled,
    worker_loads,
)
from repro.serving.executors import validate_placement

N_LEADS = 1


@pytest.fixture(scope="module")
def record():
    return RecordSynthesizer(SynthesisConfig(n_leads=N_LEADS), seed=201).synthesize(
        12.0, class_mix={"N": 0.55, "V": 0.3, "L": 0.15}, name="autoscale"
    )


class TestPlacementPolicies:
    def test_placements_export_and_validation(self):
        assert PLACEMENTS == ("hash", "least-loaded", "round-robin")
        assert validate_placement("hash") == "hash"
        with pytest.raises(ValueError) as excinfo:
            validate_placement("random")
        message = str(excinfo.value)
        assert "random" in message
        for name in PLACEMENTS:
            assert name in message

    def test_unknown_placement_rejected_before_spawning(self, embedded_classifier):
        import multiprocessing

        before = len(multiprocessing.active_children())
        with pytest.raises(ValueError, match="unknown placement"):
            ShardedGateway(embedded_classifier, 360.0, placement="spread")
        assert len(multiprocessing.active_children()) == before

    def test_round_robin_cycles(self, embedded_classifier):
        with ShardedGateway(
            embedded_classifier, 360.0, workers=3, placement="round-robin",
            n_leads=N_LEADS,
        ) as gateway:
            for i in range(6):
                gateway.open_session(f"s{i}")
            assert [gateway.worker_of(f"s{i}") for i in range(6)] == [0, 1, 2, 0, 1, 2]
            assert gateway.session_counts() == [2, 2, 2]

    def test_least_loaded_fills_gaps(self, embedded_classifier):
        with ShardedGateway(
            embedded_classifier, 360.0, workers=3, placement="least-loaded",
            n_leads=N_LEADS,
        ) as gateway:
            gateway.open_session("a", worker=0)
            gateway.open_session("b", worker=0)
            gateway.open_session("c", worker=2)
            gateway.open_session("d")  # emptiest is worker 1
            assert gateway.worker_of("d") == 1
            gateway.open_session("e")  # tie 1 vs 2 -> lowest index
            assert gateway.worker_of("e") == 1
            assert gateway.sessions_on(0) == ["a", "b"]

    def test_hash_placement_unchanged(self, embedded_classifier):
        """The default policy is still the stable CRC-32 assignment."""
        with ShardedGateway(
            embedded_classifier, 360.0, workers=4, n_leads=N_LEADS
        ) as gateway:
            assert gateway.placement == "hash"
            for sid in ("alpha", "beta", "gamma"):
                gateway.open_session(sid)
                assert gateway.worker_of(sid) == gateway._hash(sid) % gateway.workers


class TestAutoBalancer:
    @pytest.mark.chaos_seeds(0, 1, 2)
    def test_hysteresis_converges_without_ping_pong(
        self, chaos_seed, embedded_classifier
    ):
        """Under any seeded static load, migrations reach a fixed point
        within a bounded number of ticks and then stay there."""
        rng = np.random.default_rng(3000 + chaos_seed)
        workers = int(rng.integers(2, 5))
        n_sessions = int(rng.integers(6, 14))
        threshold = int(rng.integers(1, 3))
        per_tick = int(rng.integers(1, 4))
        cooldown = int(rng.integers(0, 3))
        with ShardedGateway(
            embedded_classifier, 360.0, workers=workers, n_leads=N_LEADS
        ) as gateway:
            for i in range(n_sessions):  # seeded skew, incl. fully loaded worker 0
                worker = 0 if rng.random() < 0.6 else int(rng.integers(0, workers))
                gateway.open_session(f"s{i}", worker=worker)
            balancer = AutoBalancer(
                gateway,
                imbalance_threshold=threshold,
                cooldown_ticks=cooldown,
                max_migrations_per_tick=per_tick,
            )
            # Worst case: every session must move, per_tick at a time,
            # with cooldown quiet ticks after each migrating tick — so
            # `bound` ticks always suffice to reach the fixed point.
            bound = (n_sessions + per_tick - 1) // per_tick * (1 + cooldown) + 1
            history = [balancer.tick() for _ in range(bound)]
            loads = worker_loads(gateway.stats())
            assert max(loads) - min(loads) <= threshold  # inside the band
            # Fixed point: further ticks never migrate again (no ping-pong).
            for _ in range(cooldown + 3):
                assert balancer.tick() == []
            total_moved = sum(len(h) for h in history)
            assert total_moved == gateway.n_migrations == balancer.n_migrations
            assert total_moved < n_sessions  # never churned the whole fleet

    def test_quiet_inside_band(self, embedded_classifier):
        """A balanced pool is never touched (the hysteresis band)."""
        with ShardedGateway(
            embedded_classifier, 360.0, workers=2, n_leads=N_LEADS
        ) as gateway:
            gateway.open_session("a", worker=0)
            gateway.open_session("b", worker=0)
            gateway.open_session("c", worker=1)
            balancer = AutoBalancer(gateway, imbalance_threshold=1)
            assert balancer.tick() == []
            assert gateway.n_migrations == 0

    def test_tick_survives_eviction_racing_the_snapshot(
        self, embedded_classifier
    ):
        """A session evicted after the load snapshot but before its
        migration (the eviction notice still undrained in the pipe)
        is skipped, not crashed on — same race retire_worker guards."""
        with ShardedGateway(
            embedded_classifier, 360.0, workers=2, n_leads=N_LEADS,
            evict_after_ticks=3,
        ) as gateway:
            for i in range(4):
                gateway.open_session(f"a{i}", worker=0)
            gateway.open_session("idle", worker=0)  # last placed on 0
            stats = gateway.stats()  # snapshot still lists "idle"
            # Three ticks on worker 0 with only a0 ingesting: the
            # worker evicts every other session during the third; the
            # notices ride a pipelined response the parent has not
            # drained yet, so the parent still lists all five sessions.
            for _ in range(3):
                gateway.ingest("a0", np.zeros(32))
            assert gateway.session_counts() == [5, 0]  # notices undrained
            balancer = AutoBalancer(
                gateway, imbalance_threshold=1, cooldown_ticks=0,
                max_migrations_per_tick=4,
            )
            # The first move targets "idle" (most recently placed on
            # the busy worker); its release drains the eviction
            # notices — the KeyError is swallowed and balancing
            # continues with the real survivor.
            moved = balancer.tick(stats)  # must not raise
            assert moved == [("a0", 0, 1)]
            assert set(gateway.take_evicted()) == {"a1", "a2", "a3", "idle"}
            assert gateway.session_counts() == [0, 1]

    def test_single_worker_noop(self, embedded_classifier):
        with ShardedGateway(
            embedded_classifier, 360.0, workers=1, n_leads=N_LEADS
        ) as gateway:
            gateway.open_session("a")
            assert AutoBalancer(gateway).tick() == []

    def test_validation_named_bounds(self, embedded_classifier):
        with ShardedGateway(embedded_classifier, 360.0, workers=1) as gateway:
            with pytest.raises(ValueError, match="imbalance_threshold must be >= 1"):
                AutoBalancer(gateway, imbalance_threshold=0)
            with pytest.raises(ValueError, match="cooldown_ticks must be >= 0"):
                AutoBalancer(gateway, cooldown_ticks=-1)
            with pytest.raises(
                ValueError, match="max_migrations_per_tick must be >= 1"
            ):
                AutoBalancer(gateway, max_migrations_per_tick=0)

    def test_rebalance_preserves_events(
        self, record, embedded_classifier, assert_events_equal, standalone_events
    ):
        """A balancer tick mid-stream never perturbs a session's events."""
        fs = record.fs
        block = int(0.5 * fs)
        with ShardedGateway(
            embedded_classifier, fs, workers=2, n_leads=N_LEADS, max_batch=8
        ) as gateway:
            for sid in ("a", "b", "c"):
                gateway.open_session(sid, worker=0)  # skewed on purpose
            balancer = AutoBalancer(
                gateway, imbalance_threshold=1, cooldown_ticks=0
            )
            events, i = [], 0
            while i < record.n_samples:
                events += gateway.ingest("a", record.signal[i : i + block])
                i += block
                balancer.tick()
            events += gateway.close_session("a")
            assert gateway.n_migrations > 0
            gateway.close_session("b")
            gateway.close_session("c")
        assert_events_equal(
            standalone_events(embedded_classifier, record, fs, N_LEADS), events
        )


class TestElasticPool:
    def test_add_worker_grows_and_places(self, embedded_classifier):
        with ShardedGateway(
            embedded_classifier, 360.0, workers=1, placement="least-loaded",
            n_leads=N_LEADS,
        ) as gateway:
            gateway.open_session("a")
            index = gateway.add_worker()
            assert (index, gateway.workers) == (1, 2)
            gateway.open_session("b")  # least-loaded favors the new worker
            assert gateway.worker_of("b") == 1
            assert gateway.stats()["scale_events"] == 1

    def test_retire_last_worker_rejected(self, embedded_classifier):
        with ShardedGateway(
            embedded_classifier, 360.0, workers=1, n_leads=N_LEADS
        ) as gateway:
            with pytest.raises(ValueError, match="cannot retire the last worker"):
                gateway.retire_worker(0)
            with pytest.raises(ValueError, match=r"worker must be in \[0, 1\)"):
                gateway.retire_worker(1)

    def test_retire_reindexes_surviving_sessions(self, embedded_classifier):
        with ShardedGateway(
            embedded_classifier, 360.0, workers=3, n_leads=N_LEADS
        ) as gateway:
            gateway.open_session("a", worker=0)
            gateway.open_session("b", worker=1)
            gateway.open_session("c", worker=2)
            moved = gateway.retire_worker(1)
            assert moved == 1
            assert gateway.workers == 2
            assert gateway.worker_of("a") == 0
            assert gateway.worker_of("c") == 1  # shifted down
            assert gateway.n_sessions == 3
            stats = gateway.stats()
            assert len(stats["per_worker"]) == 2
            assert stats["n_sessions"] == 3
            # Drain moves count as migrations, like any other move.
            assert stats["migrations"] == moved == gateway.n_migrations

    def test_scaling_rejected_after_shutdown(self, embedded_classifier):
        gateway = ShardedGateway(embedded_classifier, 360.0, workers=2)
        gateway.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            gateway.add_worker()
        with pytest.raises(RuntimeError, match="shut down"):
            gateway.retire_worker(0)

    def test_retire_drains_blocked_inbox_sessions_losslessly(
        self, record, embedded_classifier, assert_events_equal, standalone_events
    ):
        """Retiring a worker whose sessions have backlogged bounded
        inboxes (chunks accepted but not yet processed) loses nothing:
        the drain waits for the worker, folds every buffered event into
        the migration, and the inbox audit survives on the new owner."""
        fs = record.fs
        block = int(0.5 * fs)
        with ShardedGateway(
            embedded_classifier, fs, workers=2, n_leads=N_LEADS,
            inbox_capacity=1, inbox_policy="block", max_batch=4,
        ) as gateway:
            gateway.open_session("p", worker=0)
            gateway.open_session("q", worker=0)
            events, i = [], 0
            # Backlog worker 0: each session has an in-flight chunk.
            for _ in range(3):
                events += gateway.ingest("p", record.signal[i : i + block])
                gateway.ingest("q", record.signal[:block])
                i += block
            assert len(gateway._inboxes["p"]) + len(gateway._inboxes["q"]) > 0
            moved = gateway.retire_worker(0)
            assert moved == 2
            assert gateway.workers == 1
            assert gateway.worker_of("p") == 0 and gateway.worker_of("q") == 0
            while i < record.n_samples:
                events += gateway.ingest("p", record.signal[i : i + block])
                i += block
            events += gateway.close_session("p")
            gateway.close_session("q")
        assert_events_equal(
            standalone_events(embedded_classifier, record, fs, N_LEADS), events
        )

    def test_retire_preserves_drop_audit(self, record, embedded_classifier):
        """The shedding audit (n_dropped) survives the drain migration."""
        fs = record.fs
        with ShardedGateway(
            embedded_classifier, fs, workers=2, n_leads=N_LEADS,
            inbox_capacity=1, inbox_policy="drop",
        ) as gateway:
            gateway.open_session("p", worker=0)
            for _ in range(6):  # overrun the inbox; some chunks shed
                gateway.ingest("p", record.signal[: int(0.5 * fs)])
            dropped = gateway.dropped_chunks("p")
            gateway.retire_worker(0)
            assert gateway.dropped_chunks("p") == dropped
            gateway.close_session("p")


class TestAutoscaler:
    def test_scales_up_to_demand_and_down_when_idle(
        self, record, embedded_classifier
    ):
        fs = record.fs
        with ShardedGateway(
            embedded_classifier, fs, workers=1, placement="least-loaded",
            n_leads=N_LEADS,
        ) as gateway:
            scaler = Autoscaler(
                gateway, target_depth=2, min_workers=1, max_workers=3,
                cooldown_ticks=0,
            )
            for i in range(6):
                gateway.open_session(f"s{i}")
            assert scaler.tick() == [("add", 1)]
            assert scaler.tick() == [("add", 2)]
            assert scaler.tick() == []  # 6 sessions / depth 2 = 3 workers
            assert gateway.workers == 3
            for i in range(5):
                gateway.close_session(f"s{i}")
            assert scaler.tick()[0][0] == "retire"
            assert scaler.tick()[0][0] == "retire"
            assert scaler.tick() == []
            assert gateway.workers == 1  # back at min_workers
            assert gateway.n_sessions == 1  # survivor drained onto the pool
            assert (scaler.n_scale_ups, scaler.n_scale_downs) == (2, 2)
            assert gateway.stats()["scale_events"] == 4

    def test_cooldown_spaces_scale_events(self, embedded_classifier):
        with ShardedGateway(
            embedded_classifier, 360.0, workers=1, n_leads=N_LEADS
        ) as gateway:
            scaler = Autoscaler(
                gateway, target_depth=1, min_workers=1, max_workers=4,
                cooldown_ticks=2,
            )
            for i in range(4):
                gateway.open_session(f"s{i}")
            assert len(scaler.tick()) == 1
            assert scaler.tick() == []  # cooling down
            assert scaler.tick() == []
            assert len(scaler.tick()) == 1
            assert gateway.workers == 3

    def test_respects_min_and_max(self, embedded_classifier):
        with ShardedGateway(
            embedded_classifier, 360.0, workers=2, n_leads=N_LEADS
        ) as gateway:
            scaler = Autoscaler(
                gateway, target_depth=1, min_workers=2, max_workers=2,
                cooldown_ticks=0,
            )
            assert scaler.tick() == []  # empty fleet but min_workers=2
            for i in range(8):
                gateway.open_session(f"s{i}")
            assert scaler.tick() == []  # load wants 8 workers, max is 2
            assert gateway.workers == 2

    def test_desired_workers_policy(self, embedded_classifier):
        with ShardedGateway(embedded_classifier, 360.0, workers=1) as gateway:
            scaler = Autoscaler(
                gateway, target_depth=4, min_workers=1, max_workers=4
            )
            assert scaler.desired_workers(0) == 1
            assert scaler.desired_workers(4) == 1
            assert scaler.desired_workers(5) == 2
            assert scaler.desired_workers(17) == 4
            assert scaler.desired_workers(400) == 4

    def test_validation_named_bounds(self, embedded_classifier):
        with ShardedGateway(embedded_classifier, 360.0, workers=1) as gateway:
            with pytest.raises(ValueError, match="target_depth must be >= 1"):
                Autoscaler(gateway, target_depth=0)
            with pytest.raises(ValueError, match="min_workers must be >= 1"):
                Autoscaler(gateway, min_workers=0)
            with pytest.raises(ValueError, match="max_workers must be >= 3"):
                Autoscaler(gateway, min_workers=3, max_workers=2)

    def test_serve_autoscaled_validates_chunk(self, embedded_classifier):
        with ShardedGateway(embedded_classifier, 360.0, workers=1) as gateway:
            with pytest.raises(ValueError, match="chunk must be >= 1"):
                serve_autoscaled(gateway, {"s": np.zeros(10)}, 0)

    def test_serve_autoscaled_end_to_end_bit_exact(
        self, record, embedded_classifier, assert_events_equal, standalone_events
    ):
        """The canonical elastic driver: the pool grows under load and
        rebalances, and every session's events stay bit-exact with a
        standalone node."""
        fs = record.fs
        streams = {f"s{i}": record.signal for i in range(5)}
        with ShardedGateway(
            embedded_classifier, fs, workers=1, placement="least-loaded",
            n_leads=N_LEADS, max_batch=16,
        ) as gateway:
            scaler = Autoscaler(
                gateway, target_depth=2, min_workers=1, max_workers=3,
                cooldown_ticks=0,
            )
            balancer = AutoBalancer(
                gateway, imbalance_threshold=1, cooldown_ticks=0
            )
            events = serve_autoscaled(
                gateway, streams, int(0.5 * fs),
                autoscaler=scaler, balancer=balancer,
            )
            stats = gateway.stats()
            assert stats["workers"] == 3  # 5 sessions / depth 2
            assert stats["scale_events"] >= 2
            assert stats["migrations"] >= 1  # the balancer spread the load
        expected = standalone_events(embedded_classifier, record, fs, N_LEADS)
        for sid in streams:
            assert_events_equal(expected, events[sid])


class TestStatsSchema:
    """Pin the ``stats()`` schema the autoscaling policies consume.

    If a key is renamed, dropped, or changes type, the policies would
    silently misread the load — this regression test fails instead.
    """

    TOTALS = ("n_sessions", "n_queued", "n_flushes", "n_classified", "n_evicted")
    ANALYTICS = ("sessions", "beats", "episodes", "alerts", "by_kind")

    def test_schema_keys_types_and_consistency(self, record, embedded_classifier):
        fs = record.fs
        with ShardedGateway(
            embedded_classifier, fs, workers=3, n_leads=N_LEADS, max_batch=4
        ) as gateway:
            for i in range(4):
                gateway.open_session(f"s{i}")
            for i in range(4):
                gateway.ingest(f"s{i}", record.signal[: int(2.0 * fs)])
            gateway.migrate_session("s0", (gateway.worker_of("s0") + 1) % 3)
            gateway.add_worker()
            stats = gateway.stats()

            expected = set(self.TOTALS) | {
                "analytics", "per_worker", "workers", "migrations", "scale_events"
            }
            assert set(stats) == expected
            assert stats["workers"] == gateway.workers == 4
            assert isinstance(stats["per_worker"], list)
            assert len(stats["per_worker"]) == stats["workers"]
            for key in ("workers", "migrations", "scale_events", *self.TOTALS):
                assert isinstance(stats[key], int), key
                assert stats[key] >= 0, key
            for block in [stats["analytics"]] + [
                w["analytics"] for w in stats["per_worker"]
            ]:
                assert set(block) == set(self.ANALYTICS)
                for key in ("sessions", "beats", "episodes", "alerts"):
                    assert isinstance(block[key], int), key
                    assert block[key] >= 0, key
                assert isinstance(block["by_kind"], dict)
            for worker_stats in stats["per_worker"]:
                assert set(worker_stats) == set(self.TOTALS) | {"analytics"}
                for key, value in worker_stats.items():
                    if key == "analytics":
                        continue
                    assert isinstance(value, int), key
                    assert value >= 0, key
            # Sum-over-workers consistency: every total is its column sum.
            for key in self.TOTALS:
                assert stats[key] == sum(w[key] for w in stats["per_worker"]), key
            assert stats["n_sessions"] == gateway.n_sessions == 4
            assert stats["migrations"] == gateway.n_migrations == 1
            assert stats["scale_events"] == gateway.n_scale_events == 1
            assert worker_loads(stats) == [
                w["n_sessions"] + w["n_queued"] for w in stats["per_worker"]
            ]
            for sid in gateway.session_ids():
                gateway.close_session(sid)
