"""BeatBatch: structure-of-arrays accumulator + O(1) latency bookkeeping.

The batch is the gateway's per-ingest hot path, so these tests pin the
two properties the rewrite bought: beat rows land in a reused
preallocated buffer (no per-beat list appends, zero-copy drain) and
the latency-budget check never rescans the batch or the per-session
tick map — ``min_deadline`` is maintained incrementally by ``add``.
"""

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import StreamGateway
from repro.serving.gateway import _BATCH_INITIAL_CAPACITY, BeatBatch


class TestBeatBatchAccumulation:
    def test_add_then_drain_preserves_order(self):
        batch = BeatBatch()
        rows = np.arange(12, dtype=np.float64).reshape(4, 3)
        for i, row in enumerate(rows):
            batch.add(f"s{i % 2}", ("handle", i), row, tick=i)
        assert len(batch) == 4
        session_ids, handles, drained = batch.drain()
        assert session_ids == ["s0", "s1", "s0", "s1"]
        assert handles == [("handle", i) for i in range(4)]
        np.testing.assert_array_equal(drained, rows)
        assert len(batch) == 0

    def test_drain_empty(self):
        assert BeatBatch().drain() == ([], [], None)

    def test_drain_is_zero_copy(self):
        batch = BeatBatch()
        batch.add("s", 0, np.zeros(5), tick=0)
        _, _, rows = batch.drain()
        assert np.shares_memory(rows, batch._rows)

    def test_buffer_reused_across_drains(self):
        batch = BeatBatch()
        batch.add("s", 0, np.zeros(4), tick=0)
        batch.drain()
        buffer = batch._rows
        batch.add("s", 1, np.ones(4), tick=1)
        assert batch._rows is buffer

    def test_growth_beyond_initial_capacity(self):
        batch = BeatBatch()
        n = 3 * _BATCH_INITIAL_CAPACITY + 7
        rows = np.random.default_rng(0).normal(size=(n, 6))
        for i, row in enumerate(rows):
            batch.add(f"s{i % 5}", i, row, tick=i)
        session_ids, handles, drained = batch.drain()
        assert handles == list(range(n))
        assert session_ids == [f"s{i % 5}" for i in range(n)]
        np.testing.assert_array_equal(drained, rows)
        # Doubling, not per-add reallocation.
        assert batch._rows.shape[0] >= n
        assert batch._rows.shape[0] & (batch._rows.shape[0] - 1) == 0


class TestLatencyBookkeeping:
    def test_oldest_tick_is_first_add(self):
        batch = BeatBatch()
        assert batch.oldest_tick is None
        batch.add("a", 0, np.zeros(2), tick=7)
        batch.add("b", 1, np.zeros(2), tick=9)
        assert batch.oldest_tick == 7

    def test_session_oldest_per_session(self):
        batch = BeatBatch()
        batch.add("a", 0, np.zeros(2), tick=3)
        batch.add("a", 1, np.zeros(2), tick=5)
        batch.add("b", 2, np.zeros(2), tick=5)
        assert batch.session_oldest == {"a": 3, "b": 5}

    def test_min_deadline_armed_on_first_queued_beat(self):
        batch = BeatBatch()
        assert batch.min_deadline is None
        batch.add("a", 0, np.zeros(2), tick=10, budget=8)
        assert batch.min_deadline == 18
        # A later beat of the same session must not re-arm ...
        batch.add("a", 1, np.zeros(2), tick=14, budget=8)
        assert batch.min_deadline == 18
        # ... but a tighter session's first beat takes the min.
        batch.add("b", 2, np.zeros(2), tick=12, budget=2)
        assert batch.min_deadline == 14
        batch.add("c", 3, np.zeros(2), tick=13, budget=50)
        assert batch.min_deadline == 14

    def test_budgetless_beats_never_arm(self):
        batch = BeatBatch()
        batch.add("a", 0, np.zeros(2), tick=4)
        assert batch.min_deadline is None

    def test_drain_resets_bookkeeping(self):
        batch = BeatBatch()
        batch.add("a", 0, np.zeros(2), tick=1, budget=3)
        batch.drain()
        assert batch.oldest_tick is None
        assert batch.session_oldest == {}
        assert batch.min_deadline is None
        batch.add("b", 1, np.zeros(2), tick=20, budget=5)
        assert batch.oldest_tick == 20
        assert batch.min_deadline == 25


class _CountingBatch(BeatBatch):
    """Counts reads of the O(sessions)/O(batch) bookkeeping views."""

    def __init__(self):
        super().__init__()
        self.session_oldest_reads = 0
        self.oldest_tick_reads = 0

    @property
    def session_oldest(self):
        self.session_oldest_reads += 1
        return BeatBatch.session_oldest.fget(self)

    @property
    def oldest_tick(self):
        self.oldest_tick_reads += 1
        return BeatBatch.oldest_tick.fget(self)


class TestNoRescanRegression:
    def test_budget_flushes_without_scanning_sessions(self, embedded_classifier):
        """Latency flushes must fire off ``min_deadline`` alone.

        Regression guard for the O(sessions) walk the per-ingest
        budget check used to do over ``session_oldest``: a gateway
        serving a budgeted session still flushes on time while never
        reading the per-session tick map (or the oldest-tick scan).
        """
        record = RecordSynthesizer(
            SynthesisConfig(n_leads=1), seed=81
        ).synthesize(12.0, class_mix={"N": 0.7, "V": 0.3}, name="budgeted")
        gateway = StreamGateway(
            embedded_classifier,
            record.fs,
            n_leads=1,
            max_batch=10_000,  # only latency budgets may trigger flushes
            max_latency_ticks=3,
        )
        batch = _CountingBatch()
        gateway._batch = batch
        gateway.open_session("budgeted", max_latency_ticks=2)
        chunk = int(0.25 * record.fs)
        events = []
        for lo in range(0, record.n_samples, chunk):
            events.extend(gateway.ingest("budgeted", record.signal[lo : lo + chunk]))
        assert gateway.n_flushes > 0, "budget flushes never fired"
        assert events, "no beats resolved mid-stream"
        assert batch.session_oldest_reads == 0
        assert batch.oldest_tick_reads == 0
        events.extend(gateway.close_session("budgeted"))
        labels = {e.label for e in events}
        assert labels  # classified via the injected batch end to end
