"""Kill-chaos suite: seeded ``kill -9`` schedules against the
supervised pool, for every journal backend.

Random interleavings of ``open`` / ``ingest`` / ``poll`` / ``migrate``
over a two-worker process pool, with SIGKILLs of randomly chosen
workers injected at random points (plus one forced kill mid-schedule,
so every seed actually exercises recovery).  The pinned contract is
the durability tier's whole point: **every event sequence the caller
accumulates — across however many crashes — is bit-exact with a
standalone inline-mode ``StreamingNode``** fed the full stream.  No
event is lost (the write-ahead journal makes accepted chunks durable)
and none is delivered twice (the delivered counter scopes replay).

Failures replay deterministically; set ``REPRO_CHAOS_SEED=<int>`` to
override the seed sets (see ``conftest.pytest_generate_tests``).
"""

import os
import signal

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import (
    FileJournalStore,
    MemoryJournalStore,
    SessionJournal,
    SqliteJournalStore,
    SupervisedGateway,
)

N_LEADS = 1
FS = 360.0
BACKENDS = ("file", "sqlite", "memory")


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=N_LEADS), seed=s).synthesize(
            10.0, class_mix={"N": 0.55, "V": 0.3, "L": 0.15}, name=f"kill-{s}"
        )
        for s in (201, 202, 203)
    ]


def make_journal(backend, tmp_path, snapshot_every):
    if backend == "memory":
        store = MemoryJournalStore()
    elif backend == "file":
        store = FileJournalStore(str(tmp_path / "journal"))
    else:
        store = SqliteJournalStore(str(tmp_path / "journal.sqlite3"))
    return SessionJournal(store, snapshot_every=snapshot_every)


def chunk_queue(record, rng):
    """Split a record into random 16..700-sample ingest chunks."""
    chunks, i = [], 0
    while i < record.n_samples:
        n = int(rng.integers(16, 700))
        chunks.append(record.signal[i : i + n])
        i += n
    return chunks


def sigkill(gateway, index) -> bool:
    proc = gateway.gateway._procs[index]
    if not proc.is_alive():  # already dead from an earlier kill
        return False
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(5.0)
    return True


class TestKillChaos:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.chaos_seeds(0, 1)
    def test_random_kill_schedule_is_bit_exact(
        self, backend, chaos_seed, records, embedded_classifier,
        assert_events_equal, standalone_events, tmp_path,
    ):
        rng = np.random.default_rng(
            7000 + 10 * chaos_seed + BACKENDS.index(backend)
        )
        journal = make_journal(
            backend, tmp_path, snapshot_every=int(rng.integers(2, 9))
        )
        n_kills = 0
        with SupervisedGateway(
            embedded_classifier, FS, journal=journal, workers=2,
            n_leads=N_LEADS,
            max_batch=int(rng.integers(4, 32)),
            max_latency_ticks=int(rng.integers(2, 12)),
        ) as gateway:
            sessions = {}
            for i, record in enumerate(records):
                sessions[f"s{i}"] = dict(
                    record=record, chunks=chunk_queue(record, rng),
                    fed=0, events=[],
                )
                gateway.open_session(f"s{i}")
            total_chunks = sum(len(s["chunks"]) for s in sessions.values())
            forced_kill_at = total_chunks // 2
            ingested = 0

            def close(sid):
                state = sessions.pop(sid)
                state["events"] += gateway.close_session(sid)
                # Killed workers or not, the accumulated sequence is
                # the standalone node's, on the full stream.
                assert_events_equal(
                    standalone_events(
                        embedded_classifier, state["record"], FS, N_LEADS,
                        upto=state["fed"],
                    ),
                    state["events"],
                )

            while sessions:
                if ingested == forced_kill_at:
                    # Guarantee the schedule kills a session-owning
                    # worker at least once per seed.
                    ingested += 1  # fire exactly once
                    victim = gateway.worker_of(sorted(sessions)[0])
                    n_kills += sigkill(gateway, victim)
                sid = str(rng.choice(sorted(sessions)))
                state = sessions[sid]
                roll = rng.random()
                if roll < 0.70:
                    if not state["chunks"]:
                        close(sid)
                        continue
                    chunk = state["chunks"].pop(0)
                    state["events"] += gateway.ingest(sid, chunk)
                    state["fed"] += len(chunk)
                    ingested += 1
                elif roll < 0.78:
                    n_kills += sigkill(gateway, int(rng.integers(0, 2)))
                elif roll < 0.88:
                    state["events"] += gateway.poll(sid)
                elif roll < 0.95:
                    gateway.migrate_session(sid, int(rng.integers(0, 2)))
                else:
                    gateway.flush()
            stats = gateway.stats()
            # Every session closed cleanly: nothing is left to recover.
            assert journal.session_ids() == []
        journal.close()
        assert n_kills >= 1
        assert stats["recoveries"] >= 1
        assert stats["respawns"] >= n_kills

    @pytest.mark.parametrize("backend", ["file", "sqlite"])
    @pytest.mark.chaos_seeds(0)
    def test_kill_then_restart_then_kill_again(
        self, backend, chaos_seed, records, embedded_classifier,
        assert_events_equal, standalone_events, tmp_path,
    ):
        """The full gauntlet: a worker kill, a full-process restart
        over the surviving journal directory, then another kill — one
        uninterrupted bit-exact sequence through all three."""
        rng = np.random.default_rng(9000 + chaos_seed)
        record = records[0]
        chunks = chunk_queue(record, rng)
        cuts = sorted(rng.choice(range(1, len(chunks)), size=2, replace=False))
        events, fed = [], 0

        def run_segment(gateway, segment, kill_after):
            nonlocal fed
            events.append(gateway.poll("s"))  # restart backlog, if any
            for j, chunk in enumerate(segment):
                events.append(gateway.ingest("s", chunk))
                fed += len(chunk)
                if j == kill_after:
                    sigkill(gateway, gateway.worker_of("s"))

        journal = make_journal(backend, tmp_path, snapshot_every=3)
        with SupervisedGateway(
            embedded_classifier, FS, journal=journal, workers=2,
            n_leads=N_LEADS, max_batch=8,
        ) as gateway:
            gateway.open_session("s")
            run_segment(gateway, chunks[: cuts[0]], kill_after=cuts[0] // 2)
        journal.close()  # process "restart": pool reaped, journal kept

        journal = make_journal(backend, tmp_path, snapshot_every=3)
        with SupervisedGateway(
            embedded_classifier, FS, journal=journal, workers=2,
            n_leads=N_LEADS, max_batch=8,
        ) as gateway:
            assert gateway.check_workers() == 1
            run_segment(
                gateway, chunks[cuts[0] : cuts[1]],
                kill_after=(cuts[1] - cuts[0]) // 2,
            )
            run_segment(gateway, chunks[cuts[1] :], kill_after=-1)
            events.append(gateway.close_session("s"))
        journal.close()
        assert fed == record.n_samples
        assert_events_equal(
            standalone_events(embedded_classifier, record, FS, N_LEADS),
            [event for batch in events for event in batch],
        )


class TestEvictionSalvageChaos:
    """Kill a worker *between* evicting a session and the parent
    reading the response that carries the final events.

    A worker-side idle eviction rides the next pipelined response; if
    the worker dies before the parent drains it, those final events
    used to vanish — neither ``take_evicted()`` nor recovery would
    ever see them (the journal entry still existed, but a recovery
    *resurrecting* the session would contradict the worker's completed
    close).  Recovery now salvages the dead worker's buffered
    responses first: the eviction is delivered for real, counted in
    ``evictions_salvaged``, and the session stays closed.
    """

    @pytest.mark.parametrize("backend", ["file", "sqlite"])
    @pytest.mark.chaos_seeds(0, 1)
    def test_kill_between_evict_and_delivery(
        self, backend, chaos_seed, records, embedded_classifier,
        assert_events_equal, standalone_events, tmp_path,
    ):
        rng = np.random.default_rng(9500 + chaos_seed)
        # A large snapshot cadence: a mid-ingest snapshot is a
        # synchronous request that would drain the pipe and deliver
        # the eviction the ordinary way, defusing the race under test.
        journal = make_journal(backend, tmp_path, snapshot_every=64)
        stale_upto = int(rng.integers(1000, 3000))
        with SupervisedGateway(
            embedded_classifier, FS, journal=journal, workers=2,
            n_leads=N_LEADS, max_batch=int(rng.integers(4, 24)),
        ) as gateway:
            # Both sessions pinned to worker 0 so the busy session's
            # ingests advance the stale one's idle clock.
            gateway.open_session("stale", worker=0, evict_after_ticks=1)
            gateway.open_session("busy", worker=0)
            events = [gateway.ingest("stale", records[0].signal[:stale_upto])]
            # Synchronize (poll drains every buffered response), so
            # exactly ONE pipelined response is outstanding next — the
            # busy ingest whose worker-side tick evicts the stale
            # session.  poll(10.0) below then guarantees the buffered
            # response is the one carrying the eviction notice.
            events.append(gateway.poll("stale"))
            busy_chunks = chunk_queue(records[1], rng)
            events.append(gateway.ingest("busy", busy_chunks[0]))
            fed = len(busy_chunks[0])
            # Wait for the worker to write the (undrained) response,
            # then kill it before anything reads the pipe.
            conn = gateway.gateway._conns[0]
            assert conn.poll(10.0)
            assert sigkill(gateway, 0)
            assert gateway.check_workers() >= 1  # busy recovered
            # The salvaged eviction reached the caller surface ...
            evicted = gateway.take_evicted()
            assert "stale" in evicted
            assert_events_equal(
                standalone_events(
                    embedded_classifier, records[0], FS, N_LEADS,
                    upto=stale_upto,
                ),
                events[0] + events[1] + evicted["stale"],
            )
            assert gateway.stats()["evictions_salvaged"] >= 1
            # ... and recovery did not resurrect the closed session.
            assert "stale" not in gateway.gateway._owner
            assert "stale" not in journal.session_ids()
            # The surviving session continues bit-exactly to the end.
            for chunk in busy_chunks[1:]:
                events.append(gateway.ingest("busy", chunk))
                fed += len(chunk)
            events.append(gateway.close_session("busy"))
            assert fed == records[1].n_samples
            assert_events_equal(
                standalone_events(embedded_classifier, records[1], FS, N_LEADS),
                [e for batch in events[2:] for e in batch],
            )
        journal.close()
