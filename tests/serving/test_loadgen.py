"""Fleet load generator: synthesized fleets, paced replay, ramp search.

The loadgen's one correctness obligation: pacing changes only *when*
chunks are offered, never their content or order — so an unpaced
replay's per-session event sequences equal ``serve_round_robin`` (and
therefore a standalone node).  The rest is measurement: latency
percentiles, sustained verdicts and the max-sustained ramp.
"""

import math

import numpy as np
import pytest

from repro.serving import (
    StreamGateway,
    find_max_sustained,
    replay_fleet,
    serve_round_robin,
    synthesize_fleet,
)

FS = 360.0


@pytest.fixture(scope="module")
def fleet():
    return synthesize_fleet(4, 12.0, fs=FS, seed=5)


def _gateway(embedded_classifier, **kwargs):
    kwargs.setdefault("n_leads", 1)
    kwargs.setdefault("max_batch", 32)
    kwargs.setdefault("max_latency_ticks", 8)
    return StreamGateway(embedded_classifier, FS, **kwargs)


class TestSynthesizeFleet:
    def test_shapes_and_rate(self, fleet):
        streams, nominal_eps = fleet
        assert len(streams) == 4
        assert set(streams) == {f"loadgen-{i}" for i in range(4)}
        for signal in streams.values():
            assert signal.ndim == 1
            assert signal.shape[0] == int(12.0 * FS)
        # Sum of per-session heart rates, in a plausible band.
        assert 2.0 < nominal_eps < 20.0

    def test_sessions_differ(self, fleet):
        """Morphology/noise/rate skew must vary across the fleet."""
        streams, _ = fleet
        signals = list(streams.values())
        for a in range(len(signals)):
            for b in range(a + 1, len(signals)):
                assert not np.array_equal(signals[a], signals[b])

    def test_deterministic_per_seed(self):
        a, rate_a = synthesize_fleet(2, 4.0, fs=FS, seed=9)
        b, rate_b = synthesize_fleet(2, 4.0, fs=FS, seed=9)
        c, _ = synthesize_fleet(2, 4.0, fs=FS, seed=10)
        assert rate_a == rate_b
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])
        assert not np.array_equal(a["loadgen-0"], c["loadgen-0"])


class TestReplayFleet:
    def test_unpaced_replay_matches_serve_round_robin(
        self, fleet, embedded_classifier, assert_events_equal
    ):
        streams, _ = fleet
        chunk = int(0.25 * FS)
        report = replay_fleet(
            _gateway(embedded_classifier), streams, fs=FS, chunk=chunk
        )
        expected = serve_round_robin(
            _gateway(embedded_classifier), streams, chunk
        )
        assert set(report.events) == set(expected)
        for session_id in expected:
            assert_events_equal(expected[session_id], report.events[session_id])
        assert report.n_events == sum(len(s) for s in expected.values())

    def test_report_measurements(self, fleet, embedded_classifier):
        streams, _ = fleet
        report = replay_fleet(
            _gateway(embedded_classifier), streams, fs=FS, chunk=int(0.25 * FS)
        )
        assert report.target_eps is None
        assert report.n_events > 0
        assert report.achieved_eps > 0
        assert report.wall_s > 0
        assert not math.isnan(report.p50_ms)
        assert 0 <= report.p50_ms <= report.p99_ms

    def test_low_target_is_sustained_and_paced(
        self, fleet, embedded_classifier
    ):
        streams, nominal_eps = fleet
        # Far below what one process classifies: trivially sustained,
        # and the pacer must actually stretch the replay.
        target = 40.0 * nominal_eps
        report = replay_fleet(
            _gateway(embedded_classifier), streams, fs=FS,
            chunk=int(0.25 * FS), target_eps=target, nominal_eps=nominal_eps,
        )
        assert report.sustained
        assert report.target_eps == target
        assert report.scheduled_s > 0
        assert report.wall_s >= 0.9 * report.scheduled_s

    def test_pacing_does_not_change_events(
        self, fleet, embedded_classifier, assert_events_equal
    ):
        streams, nominal_eps = fleet
        unpaced = replay_fleet(
            _gateway(embedded_classifier), streams, fs=FS, chunk=int(0.25 * FS)
        )
        paced = replay_fleet(
            _gateway(embedded_classifier), streams, fs=FS, chunk=int(0.25 * FS),
            target_eps=50.0 * nominal_eps, nominal_eps=nominal_eps,
        )
        for session_id in unpaced.events:
            assert_events_equal(
                unpaced.events[session_id], paced.events[session_id]
            )


class TestFindMaxSustained:
    def test_ramp_finds_a_sustained_point(self, fleet, embedded_classifier):
        streams, nominal_eps = fleet
        best, reports = find_max_sustained(
            lambda: _gateway(embedded_classifier),
            streams,
            fs=FS,
            chunk=int(0.25 * FS),
            nominal_eps=nominal_eps,
            start_eps=20.0 * nominal_eps,
            growth=2.0,
            max_steps=2,
        )
        assert 1 <= len(reports) <= 2
        assert best is not None
        assert best.sustained
        assert best is max(
            (r for r in reports if r.sustained), key=lambda r: r.achieved_eps
        )
        # Targets follow the geometric ramp.
        assert reports[0].target_eps == pytest.approx(20.0 * nominal_eps)
        if len(reports) > 1:
            assert reports[1].target_eps == pytest.approx(40.0 * nominal_eps)

    def test_no_sustained_point(self, fleet, embedded_classifier):
        """An absurd start rate the gateway cannot possibly meet yields
        (None, [one unsustained report])."""
        streams, nominal_eps = fleet
        best, reports = find_max_sustained(
            lambda: _gateway(embedded_classifier),
            streams,
            fs=FS,
            chunk=int(0.25 * FS),
            nominal_eps=nominal_eps,
            start_eps=1e9,
            tolerance=1e-9,
            max_steps=3,
        )
        assert best is None
        assert len(reports) == 1
        assert not reports[0].sustained
