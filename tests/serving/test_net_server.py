"""Loopback tests for the socket serving path.

The off-box tier inherits the gateway's single contract — per-session
event sequences bit-exact with a standalone inline-mode
``StreamingNode`` — and must uphold it through framing, pipelining,
flush-coalesced bursts and multiplexed connections.  These tests drive
a real :class:`GatewayServer` over loopback TCP with the pipelined
:class:`GatewayClient` and compare against the standalone reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import StreamGateway, replay_fleet, serve_round_robin, synthesize_fleet
from repro.serving.net import GatewayClient, serve_in_thread
from repro.serving.net.client import RemoteError

FS = 360.0
CHUNK = 128


@pytest.fixture(scope="module")
def fleet():
    return synthesize_fleet(3, 10.0, fs=FS, seed=21)


@pytest.fixture()
def server(embedded_classifier):
    gateway = StreamGateway(
        embedded_classifier, FS, n_leads=1, max_batch=16, max_latency_ticks=8
    )
    handle = serve_in_thread(gateway)
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with GatewayClient(server.host, server.port, window=4) as c:
        yield c


def stream_session(client, session_id, signal, chunk=CHUNK):
    client.open_session(session_id)
    events = []
    for start in range(0, len(signal), chunk):
        events.extend(client.ingest(session_id, signal[start : start + chunk]))
    events.extend(client.close_session(session_id))
    return events


class TestBitExactness:
    def test_single_session_matches_standalone(
        self, client, fleet, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        streams, _ = fleet
        signal = streams["loadgen-0"]
        events = stream_session(client, "loadgen-0", signal)
        reference = standalone_events(embedded_classifier, signal, FS, 1)
        assert len(events) > 0
        assert_events_equal(reference, events)

    def test_multiplexed_sessions_each_match_standalone(
        self, client, fleet, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        streams, _ = fleet
        for session_id in streams:
            client.open_session(session_id)
        events = {sid: [] for sid in streams}
        longest = max(len(x) for x in streams.values())
        for start in range(0, longest, CHUNK):
            for session_id, signal in streams.items():
                piece = signal[start : start + CHUNK]
                if len(piece):
                    events[session_id].extend(client.ingest(session_id, piece))
        for session_id in streams:
            events[session_id].extend(client.close_session(session_id))
        for session_id, signal in streams.items():
            reference = standalone_events(embedded_classifier, signal, FS, 1)
            assert_events_equal(reference, events[session_id])

    def test_two_connections_one_session_each(
        self, server, fleet, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        streams, _ = fleet
        with GatewayClient(server.host, server.port, window=4) as first, \
                GatewayClient(server.host, server.port, window=4) as second:
            clients = {"loadgen-0": first, "loadgen-1": second}
            for sid, c in clients.items():
                c.open_session(sid)
            events = {sid: [] for sid in clients}
            longest = max(len(streams[sid]) for sid in clients)
            for start in range(0, longest, CHUNK):
                for sid, c in clients.items():
                    piece = streams[sid][start : start + CHUNK]
                    if len(piece):
                        events[sid].extend(c.ingest(sid, piece))
            for sid, c in clients.items():
                events[sid].extend(c.close_session(sid))
        assert server.server.n_connections == 2
        for sid in clients:
            reference = standalone_events(embedded_classifier, streams[sid], FS, 1)
            assert_events_equal(reference, events[sid])


class TestDriversRunUnchanged:
    def test_serve_round_robin_through_the_client(
        self, server, client, fleet, embedded_classifier, assert_events_equal
    ):
        """The canonical in-process driver works against the socket."""
        streams, _ = fleet
        remote = serve_round_robin(client, streams, CHUNK)
        local_gateway = StreamGateway(
            embedded_classifier, FS, n_leads=1, max_batch=16, max_latency_ticks=8
        )
        local = serve_round_robin(local_gateway, streams, CHUNK)
        for session_id in streams:
            assert_events_equal(local[session_id], remote[session_id])

    def test_replay_fleet_through_the_client(
        self, client, fleet, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        """The loadgen's pluggable target contract covers the TCP path."""
        streams, _ = fleet
        report = replay_fleet(client, streams, fs=FS, chunk=CHUNK)
        assert report.n_events > 0
        assert np.isfinite(report.p50_ms) and np.isfinite(report.p99_ms)
        for session_id, signal in streams.items():
            reference = standalone_events(embedded_classifier, signal, FS, 1)
            assert_events_equal(reference, report.events[session_id])


class TestSessionSurface:
    def test_poll_synchronizes_and_drains(self, client, fleet):
        streams, _ = fleet
        signal = streams["loadgen-0"]
        client.open_session("s")
        collected = []
        for start in range(0, len(signal) // 2, CHUNK):
            collected.extend(client.ingest("s", signal[start : start + CHUNK]))
        collected.extend(client.poll("s"))
        # After a poll every sent chunk is acked: replay buffer empty.
        assert len(client._sessions["s"].pending) == 0
        collected.extend(client.close_session("s"))
        assert len(collected) > 0

    def test_qos_passthrough(self, client, fleet):
        """Per-session QoS rides the OPEN frame to the gateway."""
        streams, _ = fleet
        signal = streams["loadgen-0"]
        client.open_session("eager", max_latency_ticks=1, evict_after_ticks=500)
        events = []
        for start in range(0, len(signal), CHUNK):
            events.extend(client.ingest("eager", signal[start : start + CHUNK]))
        events.extend(client.close_session("eager"))
        assert len(events) > 0

    def test_duplicate_open_is_a_remote_error(self, server, client):
        client.open_session("dup")
        with GatewayClient(server.host, server.port) as other:
            with pytest.raises(RemoteError):
                other.open_session("dup")

    def test_close_unknown_session_raises_locally(self, client):
        with pytest.raises(KeyError):
            client.close_session("never-opened")

    def test_sessions_reopenable_after_close(self, client, fleet):
        streams, _ = fleet
        signal = streams["loadgen-0"][: 4 * CHUNK]
        for _ in range(2):
            client.open_session("again")
            for start in range(0, len(signal), CHUNK):
                client.ingest("again", signal[start : start + CHUNK])
            client.close_session("again")

    def test_effective_max_frame_is_negotiated_minimum(self, server):
        with GatewayClient(server.host, server.port, max_frame=1 << 15) as c:
            assert c._send_max_frame == 1 << 15


class TestNodelay:
    def test_nodelay_set_on_both_ends_of_the_connection(self, server):
        """Nagle stays off on both sockets: the protocol's small framed
        bursts (acks, polls, flush harvests) must not sit in kernel
        buffers waiting for a coalescing timer."""
        import socket as socketlib

        with GatewayClient(server.host, server.port, window=4) as c:
            c.connect()
            assert (
                c._sock.getsockopt(
                    socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY
                )
                != 0
            )
            # The server records a readback of the option on every
            # accepted socket; connect() completes the HELLO handshake,
            # so the accept has already happened.
            assert server.server.last_accept_nodelay is True


class TestCoalescedDelivery:
    def test_flush_burst_reaches_sessions_between_their_ingests(
        self, embedded_classifier
    ):
        """A flush triggered by one session's ingest pushes every other
        session's resolved events to their connection without waiting
        for those sessions' next calls (the harvest burst)."""
        import time

        from repro.ecg.synth import RecordSynthesizer, SynthesisConfig

        record = RecordSynthesizer(
            SynthesisConfig(n_leads=1), seed=61
        ).synthesize(20.0, class_mix={"N": 0.6, "V": 0.3, "L": 0.1}, name="x")
        gateway = StreamGateway(
            embedded_classifier, record.fs, n_leads=1,
            max_batch=10_000, max_latency_ticks=3,
        )
        handle = serve_in_thread(gateway)
        try:
            with GatewayClient(handle.host, handle.port, window=8) as c:
                for sid in ("a", "b"):
                    c.open_session(sid)
                # One big ingest queues all of "a"'s beats without
                # flushing (size bound unreachable, first tick).
                queued = c.ingest("a", record.signal)
                c.poll("a")
                # "a" now goes silent; "b"'s quiet ingests tick the
                # latency bound and trigger the flush that classifies
                # "a"'s beats.
                for _ in range(4):
                    c.ingest("b", np.zeros(8))
                # The harvest burst lands on "a"'s buffer with no
                # further "a" traffic — only passive pumping.
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    c._pump()
                    if c._sessions["a"].buffered:
                        break
                    time.sleep(0.01)
                assert len(queued) + len(c._sessions["a"].buffered) > 0
                assert len(c._sessions["a"].buffered) > 0
                c.close_session("a")
                c.close_session("b")
        finally:
            handle.stop()
