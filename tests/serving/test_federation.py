"""Federation tier tests: cross-host routing over real loopback hosts.

The :class:`FederatedGateway` front door inherits the gateway tier's
single contract — per-session event sequences bit-exact with a
standalone inline-mode ``StreamingNode`` — and must uphold it through
cross-host placement, wire-level live migration, lossless host drains
and fleet growth.  These tests run real ``GatewayServer`` hosts (one
event-loop thread each) behind one front door and compare against the
standalone reference; ``test_federation_chaos.py`` stresses the same
invariant under seeded interleavings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    AutoBalancer,
    FederatedGateway,
    StreamGateway,
    spawn_host,
    synthesize_fleet,
)
from repro.serving.federation import _endpoint
from repro.serving.net import GatewayClient, serve_in_thread

FS = 360.0
CHUNK = 256

FLEET_KEYS = {
    "n_sessions", "n_queued", "n_flushes", "n_classified", "n_evicted",
    "analytics", "per_host", "hosts", "migrations", "scale_events",
}
HOST_KEYS = {
    "n_sessions", "n_queued", "n_flushes", "n_classified", "n_evicted",
    "analytics", "per_worker", "workers", "migrations", "scale_events",
}


@pytest.fixture(scope="module")
def fleet():
    return synthesize_fleet(4, 8.0, fs=FS, seed=33)


def start_host(classifier):
    gateway = StreamGateway(
        classifier, FS, n_leads=1, max_batch=16, max_latency_ticks=8
    )
    return serve_in_thread(gateway)


@pytest.fixture()
def two_hosts(embedded_classifier):
    handles = [start_host(embedded_classifier) for _ in range(2)]
    yield handles
    for handle in handles:
        handle.stop()


@pytest.fixture()
def fed(two_hosts):
    with FederatedGateway(
        [h.address for h in two_hosts], window=4
    ) as gateway:
        yield gateway


class TestEndpointParsing:
    def test_host_port_string(self):
        assert _endpoint("127.0.0.1:9000") == ("127.0.0.1", 9000)

    def test_hostname_string(self):
        assert _endpoint("edge-box.lan:7001") == ("edge-box.lan", 7001)

    def test_tuple(self):
        assert _endpoint(("box", "9000")) == ("box", 9000)

    def test_bracketed_ipv6_drops_the_brackets(self):
        # "[::1]:9000" must parse to the bare address the socket layer
        # can actually connect to, not keep the brackets.
        assert _endpoint("[::1]:9000") == ("::1", 9000)
        assert _endpoint("[fe80::2]:7000") == ("fe80::2", 7000)

    def test_unbracketed_ipv6_splits_on_last_colon(self):
        assert _endpoint("::1:9000") == ("::1", 9000)

    def test_missing_port_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            _endpoint("lonely-host")

    def test_bracketed_ipv6_without_port_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            _endpoint("[::1]")

    def test_non_numeric_port_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            _endpoint("box:http")
        with pytest.raises(ValueError, match="host:port"):
            _endpoint("[::1]:")

    def test_empty_host_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            _endpoint(":9000")

    def test_no_endpoints_rejected(self):
        with pytest.raises(ValueError, match="at least one host"):
            FederatedGateway([])


class TestPlacement:
    def test_hash_is_deterministic(self, two_hosts):
        placements = []
        for _ in range(2):
            with FederatedGateway(
                [h.address for h in two_hosts], placement="hash", window=4
            ) as fed:
                for sid in ("a", "b", "c", "d"):
                    fed.open_session(sid)
                placements.append([fed.host_of(sid) for sid in "abcd"])
                for sid in "abcd":
                    fed.close_session(sid)
        assert placements[0] == placements[1]

    def test_round_robin_alternates(self, two_hosts):
        with FederatedGateway(
            [h.address for h in two_hosts], placement="round-robin", window=4
        ) as fed:
            for sid in ("a", "b", "c", "d"):
                fed.open_session(sid)
            assert [fed.host_of(sid) for sid in "abcd"] == [0, 1, 0, 1]

    def test_least_loaded_fills_the_emptiest_host(self, fed):
        fed.open_session("pinned-0", host=0)
        fed.open_session("pinned-1", host=0)
        fed.open_session("floater")
        assert fed.host_of("floater") == 1

    def test_explicit_host_wins(self, fed):
        fed.open_session("pinned", host=1)
        assert fed.host_of("pinned") == 1
        assert fed.worker_of("pinned") == 1  # sharded-surface alias

    def test_session_bookkeeping(self, fed):
        fed.open_session("a", host=0)
        fed.open_session("b", host=1)
        fed.open_session("c", host=1)
        assert fed.n_sessions == 3
        assert fed.session_ids() == ["a", "b", "c"]
        assert fed.sessions_on(1) == ["b", "c"]
        assert fed.session_counts() == [1, 2]
        assert fed.hosts == fed.workers == 2


class TestBitExactness:
    def test_fleet_bit_exact_across_migrate_retire_add(
        self, two_hosts, fleet, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        """One fleet streamed through the front door while the fleet
        itself is reshaped under it: a cross-host migration mid-stream,
        a lossless host drain, and a fresh host attached and loaded —
        every session's event sequence must match standalone."""
        streams, _ = fleet
        third = start_host(embedded_classifier)
        try:
            with FederatedGateway(
                [h.address for h in two_hosts], placement="round-robin", window=4
            ) as fed:
                for sid in streams:
                    fed.open_session(sid)
                events = {sid: [] for sid in streams}
                longest = max(len(x) for x in streams.values())
                rounds = range(0, longest, CHUNK)
                for round_no, start in enumerate(rounds):
                    if round_no == 3:
                        fed.migrate_session("loadgen-0", 1)
                    if round_no == 6:
                        fed.retire_host(0)
                    if round_no == 8:
                        index = fed.add_host(third.address)
                        fed.migrate_session("loadgen-1", index)
                    for sid, signal in streams.items():
                        piece = signal[start : start + CHUNK]
                        if len(piece):
                            events[sid].extend(fed.ingest(sid, piece))
                for sid in streams:
                    events[sid].extend(fed.close_session(sid))
                assert fed.n_migrations >= 2
                assert fed.n_scale_events == 2
        finally:
            third.stop()
        for sid, signal in streams.items():
            reference = standalone_events(embedded_classifier, signal, FS, 1)
            assert len(events[sid]) > 0
            assert_events_equal(reference, events[sid])

    def test_retire_host_returns_drain_count(self, fed, fleet):
        streams, _ = fleet
        for sid in streams:
            fed.open_session(sid, host=0)
        moved = fed.retire_host(0)
        assert moved == len(streams)
        assert fed.hosts == 1
        assert fed.session_counts() == [len(streams)]
        for sid in streams:
            fed.close_session(sid)


class TestSessionSurface:
    def test_duplicate_open_rejected(self, fed):
        fed.open_session("dup")
        with pytest.raises(ValueError, match="already open"):
            fed.open_session("dup")

    def test_unknown_session_rejected(self, fed):
        with pytest.raises(KeyError, match="ghost"):
            fed.ingest("ghost", [0.0])
        with pytest.raises(KeyError, match="ghost"):
            fed.migrate_session("ghost", 0)

    def test_bad_host_index_rejected(self, fed):
        fed.open_session("s")
        with pytest.raises(ValueError, match="out of range"):
            fed.open_session("t", host=2)
        with pytest.raises(ValueError, match="out of range"):
            fed.migrate_session("s", -1)

    def test_migrate_to_current_host_is_a_noop(self, fed):
        fed.open_session("s", host=0)
        fed.migrate_session("s", 0)
        assert fed.n_migrations == 0

    def test_cannot_retire_the_last_host(self, fed):
        fed.retire_host(0)
        with pytest.raises(ValueError, match="last host"):
            fed.retire_host(0)

    def test_shutdown_is_idempotent(self, two_hosts):
        fed = FederatedGateway([h.address for h in two_hosts], window=4)
        fed.shutdown()
        fed.shutdown()


class TestFleetStats:
    def test_rollup_schema_is_pinned(self, fed, fleet):
        """The exact rollup key set, at both levels — fleet policy
        inputs (``worker_loads``) must not silently drift."""
        streams, _ = fleet
        for sid in streams:
            fed.open_session(sid)
        stats = fed.stats()
        assert set(stats) == FLEET_KEYS
        assert stats["hosts"] == 2
        assert len(stats["per_host"]) == 2
        for host_stats in stats["per_host"]:
            assert set(host_stats) == HOST_KEYS
            assert host_stats["workers"] == 1
            assert len(host_stats["per_worker"]) == 1
        assert stats["n_sessions"] == len(streams)
        assert stats["n_sessions"] == sum(
            h["n_sessions"] for h in stats["per_host"]
        )

    def test_counters_track_fleet_reshaping(self, fed, embedded_classifier):
        fed.open_session("s", host=0)
        fed.migrate_session("s", 1)
        third = start_host(embedded_classifier)
        try:
            fed.add_host(third.address)
            fed.retire_host(0)
            stats = fed.stats()
            assert stats["migrations"] == 1
            assert stats["scale_events"] == 2
        finally:
            third.stop()


class TestWireMigration:
    """The client-level MIGRATE/STATS primitives the router composes."""

    def test_migrate_out_then_in_is_bit_exact(
        self, two_hosts, fleet, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        streams, _ = fleet
        signal = streams["loadgen-0"]
        half = (len(signal) // (2 * CHUNK)) * CHUNK
        events = []
        with GatewayClient(*two_hosts[0].address, window=4) as source, \
                GatewayClient(*two_hosts[1].address, window=4) as target:
            source.open_session("s")
            for start in range(0, half, CHUNK):
                events.extend(source.ingest("s", signal[start : start + CHUNK]))
            migrated = source.migrate_out("s")
            assert migrated.session_id == "s"
            assert len(migrated.blob) > 0
            events.extend(migrated.events)
            assert "s" not in source._sessions
            target.migrate_in(migrated)
            for start in range(half, len(signal), CHUNK):
                events.extend(target.ingest("s", signal[start : start + CHUNK]))
            events.extend(target.close_session("s"))
        reference = standalone_events(embedded_classifier, signal, FS, 1)
        assert len(events) > 0
        assert_events_equal(reference, events)

    def test_migration_counters_on_both_hosts(self, two_hosts):
        with GatewayClient(*two_hosts[0].address, window=4) as source, \
                GatewayClient(*two_hosts[1].address, window=4) as target:
            source.open_session("s")
            target.migrate_in(source.migrate_out("s"))
            target.close_session("s")
        assert two_hosts[0].server.n_migrations_out == 1
        assert two_hosts[1].server.n_migrations_in == 1

    def test_stats_over_the_wire(self, two_hosts):
        with GatewayClient(*two_hosts[0].address, window=4) as client:
            client.open_session("s")
            stats = client.stats()
            assert set(stats) == HOST_KEYS
            assert stats["n_sessions"] == 1
            client.close_session("s")


class TestSpawnHost:
    def test_spawned_process_host_serves_bit_exact(
        self, fleet, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        """A backend host in its own OS process (the ``repro federate``
        / benchmark building block) behind the front door."""
        streams, _ = fleet
        signal = streams["loadgen-0"]
        host = spawn_host(
            embedded_classifier, FS,
            gateway_kwargs=dict(n_leads=1, max_batch=16, max_latency_ticks=8),
        )
        try:
            assert host.process.is_alive()
            with FederatedGateway([host.address], window=4) as fed:
                fed.open_session("s")
                events = []
                for start in range(0, len(signal), CHUNK):
                    events.extend(fed.ingest("s", signal[start : start + CHUNK]))
                events.extend(fed.close_session("s"))
        finally:
            host.stop()
        assert not host.process.is_alive()
        reference = standalone_events(embedded_classifier, signal, FS, 1)
        assert_events_equal(reference, events)


class TestTwoLevelBalancing:
    def test_autobalancer_evens_a_skewed_fleet(
        self, fed, fleet, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        """The across-host level: the stock ``AutoBalancer`` reads the
        fleet rollup and live-migrates sessions off the hot host — and
        the moved sessions' streams stay bit-exact."""
        streams, _ = fleet
        for sid in streams:
            fed.open_session(sid, host=0)  # all on one host: maximal skew
        balancer = AutoBalancer(
            fed, imbalance_threshold=1, cooldown_ticks=0
        )
        moved = balancer.tick()
        assert moved  # spread was len(streams) - 0 > 1
        counts = fed.session_counts()
        assert max(counts) - min(counts) <= 1
        assert fed.n_migrations == len(moved)
        events = {sid: [] for sid in streams}
        longest = max(len(x) for x in streams.values())
        for start in range(0, longest, CHUNK):
            for sid, signal in streams.items():
                piece = signal[start : start + CHUNK]
                if len(piece):
                    events[sid].extend(fed.ingest(sid, piece))
        for sid in streams:
            events[sid].extend(fed.close_session(sid))
        for sid, signal in streams.items():
            reference = standalone_events(embedded_classifier, signal, FS, 1)
            assert_events_equal(reference, events[sid])

    def test_within_host_tick_hook_fires_per_ingest_budget(
        self, embedded_classifier, fleet
    ):
        """The server seam the within-host balancing level hangs off:
        the hook runs on the event-loop thread every ``tick_every``
        ingests."""
        streams, _ = fleet
        ticks = {"n": 0}

        def hook():
            ticks["n"] += 1

        gateway = StreamGateway(
            embedded_classifier, FS, n_leads=1, max_batch=16, max_latency_ticks=8
        )
        handle = serve_in_thread(gateway, tick_hook=hook, tick_every=4)
        try:
            with GatewayClient(handle.host, handle.port, window=4) as client:
                client.open_session("s")
                signal = streams["loadgen-0"]
                n_ingests = 12
                for i in range(n_ingests):
                    client.ingest("s", signal[i * CHUNK : (i + 1) * CHUNK])
                client.close_session("s")
        finally:
            handle.stop()
        assert ticks["n"] == n_ingests // 4


class TestShutdownGuards:
    """The front door refuses cleanly after shutdown() — no call may
    reach a dead client connection or leave stale routing state."""

    def test_surface_raises_cleanly_after_shutdown(self, two_hosts):
        fed = FederatedGateway([h.address for h in two_hosts], window=4)
        fed.open_session("s")
        fed.shutdown()
        assert fed.n_sessions == 0  # routing maps cleared, not stale
        calls = {
            "open_session": lambda: fed.open_session("t"),
            "migrate_session": lambda: fed.migrate_session("s", 1),
            "add_host": lambda: fed.add_host(two_hosts[0].address),
            "retire_host": lambda: fed.retire_host(0),
            "stats": fed.stats,
        }
        for name, call in calls.items():
            with pytest.raises(RuntimeError, match="gateway is shut down"):
                call()
        fed.shutdown()  # still idempotent


class TestRetireHostRaces:
    def test_retire_host_skips_sessions_evicted_server_side(
        self, embedded_classifier,
    ):
        """Satellite regression: a session the backend evicted between
        the drain's census and its wire capture must be skipped (like
        ShardedGateway.retire_worker), not abort the drain."""
        evicting = StreamGateway(
            embedded_classifier, FS, n_leads=1, max_batch=8,
            max_latency_ticks=2, evict_after_ticks=2,
        )
        handle = serve_in_thread(evicting)
        other = start_host(embedded_classifier)
        try:
            with FederatedGateway(
                [handle.address, other.address], window=4
            ) as fed:
                fed.open_session("idle", host=0)
                fed.open_session("busy", host=0)
                # Ticks from the busy session evict "idle" server-side;
                # the front door's census still lists it.
                for i in range(8):
                    fed.ingest("busy", np.zeros(64))
                assert set(fed.sessions_on(0)) == {"idle", "busy"}
                moved = fed.retire_host(0)
                assert moved == 1  # busy migrated; idle skipped
                assert "idle" not in fed.session_ids()
                assert fed.host_of("busy") == 0  # indices shifted down
                fed.ingest("busy", np.zeros(64))
                fed.close_session("busy")
        finally:
            handle.stop()
            other.stop()
