"""Chaos suite for the analytics tier: the operators' state must be
**bit-exact with a standalone fold** under every serving-layer fault.

Every test compares against the same comparator: a fresh
``default_pipeline`` fed the standalone inline-mode node's full event
sequence in *one* update call.  The gateway folds the same beats in
per-flush batches, across random chunk sizes, session interleavings,
live migrations (in-process and through pickle), idle evictions and
``SIGKILL``-ed supervised workers — and the final summaries must be
``==`` (episode sets too; ordering within an update is per-operator,
so sets are the batching-invariant artifact).

Failures replay deterministically; set ``REPRO_CHAOS_SEED=<int>`` to
override the seed sets (see ``conftest.pytest_generate_tests``).
"""

import os
import pickle
import signal

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import (
    AnalyticsPipeline,
    FileJournalStore,
    SessionJournal,
    ShardedGateway,
    StreamGateway,
    SupervisedGateway,
    default_pipeline,
)

N_LEADS = 1
FS = 360.0


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=N_LEADS), seed=s).synthesize(
            10.0, class_mix={"N": 0.55, "V": 0.3, "L": 0.15}, name=f"anchaos-{s}"
        )
        for s in (401, 402, 403)
    ]


def chunk_queue(record, rng):
    """Split a record into random 16..700-sample ingest chunks."""
    chunks, i = [], 0
    while i < record.n_samples:
        n = int(rng.integers(16, 700))
        chunks.append(record.signal[i : i + n])
        i += n
    return chunks


def episode_set(episodes):
    return sorted(episodes, key=repr)


def reference(classifier, record, standalone_events, upto=None):
    """Standalone comparator: full event list folded in one pass."""
    events = standalone_events(classifier, record, FS, N_LEADS, upto=upto)
    pipeline = AnalyticsPipeline(default_pipeline(), FS)
    closed = pipeline.update(events)
    closed += pipeline.finalize()
    return pipeline.summary(), episode_set(closed)


class TestChunkInvarianceChaos:
    @pytest.mark.chaos_seeds(0, 1, 2)
    def test_random_schedule_summaries_match_standalone(
        self, chaos_seed, records, embedded_classifier, standalone_events
    ):
        rng = np.random.default_rng(4100 + chaos_seed)
        gateway = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS,
            max_batch=int(rng.integers(1, 48)),
            max_latency_ticks=int(rng.integers(1, 16)),
            analytics=default_pipeline,
        )
        sessions = {}
        for i, record in enumerate(records):
            sessions[f"s{i}"] = dict(
                record=record, chunks=chunk_queue(record, rng), fed=0
            )
            gateway.open_session(f"s{i}")
        summaries, alerts = {}, []
        while sessions:
            sid = str(rng.choice(sorted(sessions)))
            state = sessions[sid]
            roll = rng.random()
            if roll < 0.75:
                if not state["chunks"]:
                    gateway.close_session(sid)
                    summaries.update(gateway.take_summaries())
                    alerts += gateway.take_alerts()
                    del sessions[sid]
                    continue
                chunk = state["chunks"].pop(0)
                gateway.ingest(sid, chunk)
                state["fed"] += len(chunk)
            elif roll < 0.9:
                gateway.poll(sid)
            else:
                gateway.flush_batch()
        for i, record in enumerate(records):
            expected_summary, expected_closed = reference(
                embedded_classifier, record, standalone_events
            )
            assert summaries[f"s{i}"] == expected_summary
            got = [ep for sid, ep in alerts if sid == f"s{i}"]
            assert episode_set(got) == expected_closed


class TestMigrationChaos:
    @pytest.mark.chaos_seeds(0, 1)
    def test_migration_mid_episode_is_bit_exact(
        self, chaos_seed, records, embedded_classifier, standalone_events
    ):
        """Pipelines ride SessionExport through release/import (and a
        pickle round-trip) mid-stream — mid-episode included — with no
        effect on the final summary or the closed-episode set."""
        rng = np.random.default_rng(4200 + chaos_seed)
        gateways = [
            StreamGateway(
                embedded_classifier, FS, n_leads=N_LEADS,
                max_batch=int(rng.integers(1, 32)),
                max_latency_ticks=int(rng.integers(1, 12)),
                analytics=default_pipeline,
            )
            for _ in range(2)
        ]
        sessions = {}
        for i, record in enumerate(records):
            home = int(rng.integers(0, 2))
            sessions[f"s{i}"] = dict(
                record=record, chunks=chunk_queue(record, rng), home=home
            )
            gateways[home].open_session(f"s{i}")
        summaries, alerts, n_migrations = {}, [], 0
        while sessions:
            sid = str(rng.choice(sorted(sessions)))
            state = sessions[sid]
            roll = rng.random()
            if roll < 0.68:
                if not state["chunks"]:
                    gateways[state["home"]].close_session(sid)
                    del sessions[sid]
                    continue
                gateways[state["home"]].ingest(sid, state["chunks"].pop(0))
            else:
                export = gateways[state["home"]].release_session(sid)
                if rng.random() < 0.5:  # simulate crossing a host
                    export = pickle.loads(pickle.dumps(export))
                state["home"] = 1 - state["home"]
                gateways[state["home"]].import_session(export)
                n_migrations += 1
        for gateway in gateways:
            summaries.update(gateway.take_summaries())
            alerts += gateway.take_alerts()
        assert n_migrations >= 1
        for i, record in enumerate(records):
            expected_summary, expected_closed = reference(
                embedded_classifier, record, standalone_events
            )
            assert summaries[f"s{i}"] == expected_summary
            got = [ep for sid, ep in alerts if sid == f"s{i}"]
            assert episode_set(got) == expected_closed

    @pytest.mark.chaos_seeds(0)
    def test_sharded_worker_migration_is_bit_exact(
        self, chaos_seed, records, embedded_classifier, standalone_events
    ):
        rng = np.random.default_rng(4300 + chaos_seed)
        with ShardedGateway(
            embedded_classifier, FS, workers=2, worker_mode="inline",
            n_leads=N_LEADS, max_batch=int(rng.integers(2, 24)),
            analytics=default_pipeline,
        ) as gateway:
            sessions = {}
            for i, record in enumerate(records):
                sessions[f"s{i}"] = dict(
                    record=record, chunks=chunk_queue(record, rng)
                )
                gateway.open_session(f"s{i}")
            while sessions:
                sid = str(rng.choice(sorted(sessions)))
                state = sessions[sid]
                roll = rng.random()
                if roll < 0.72:
                    if not state["chunks"]:
                        gateway.close_session(sid)
                        del sessions[sid]
                        continue
                    gateway.ingest(sid, state["chunks"].pop(0))
                elif roll < 0.9:
                    gateway.migrate_session(sid, int(rng.integers(0, 2)))
                else:
                    gateway.poll(sid)
            summaries = gateway.take_summaries()
        for i, record in enumerate(records):
            expected_summary, _ = reference(
                embedded_classifier, record, standalone_events
            )
            assert summaries[f"s{i}"] == expected_summary


class TestEvictionChaos:
    @pytest.mark.chaos_seeds(0, 1)
    def test_evicted_session_summary_covers_ingested_prefix(
        self, chaos_seed, records, embedded_classifier, standalone_events
    ):
        rng = np.random.default_rng(4400 + chaos_seed)
        gateway = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS,
            max_batch=int(rng.integers(2, 24)),
            analytics=default_pipeline,
        )
        threshold = int(rng.integers(2, 6))
        gateway.open_session("stale", evict_after_ticks=threshold)
        gateway.open_session("busy")
        stale_chunks = chunk_queue(records[0], rng)
        fed = 0
        for chunk in stale_chunks[: int(rng.integers(1, len(stale_chunks)))]:
            gateway.ingest("stale", chunk)
            fed += len(chunk)
        # Fixed-size busy chunks: enough clock ticks to trip any
        # threshold the seed picked.
        busy, offset = records[1].signal, 0
        while "stale" not in gateway.take_evicted():
            gateway.ingest("busy", busy[offset : offset + 360])
            offset = (offset + 360) % records[1].n_samples
        expected_summary, _ = reference(
            embedded_classifier, records[0], standalone_events, upto=fed
        )
        assert gateway.take_summaries()["stale"] == expected_summary
        gateway.close_session("busy")


class TestKillChaos:
    @pytest.mark.chaos_seeds(0, 1)
    def test_summaries_survive_worker_kills_bit_exactly(
        self, chaos_seed, records, embedded_classifier, standalone_events,
        tmp_path,
    ):
        """Analytics state is journal-recovered: a SIGKILL-ed worker's
        sessions replay snapshot+log, rebuilding each pipeline to the
        exact per-beat fold state, so the final summaries still match
        the standalone comparator.  (Alerts are at-least-once across a
        crash — replay may re-close episodes already alerted — so the
        pinned artifact here is the summary.)"""
        rng = np.random.default_rng(4500 + chaos_seed)
        journal = SessionJournal(
            FileJournalStore(str(tmp_path / "journal")),
            snapshot_every=int(rng.integers(2, 9)),
        )
        n_kills = 0
        with SupervisedGateway(
            embedded_classifier, FS, journal=journal, workers=2,
            n_leads=N_LEADS, max_batch=int(rng.integers(4, 32)),
            analytics=default_pipeline,
        ) as gateway:
            sessions = {}
            for i, record in enumerate(records):
                sessions[f"s{i}"] = dict(
                    record=record, chunks=chunk_queue(record, rng)
                )
                gateway.open_session(f"s{i}")
            total_chunks = sum(len(s["chunks"]) for s in sessions.values())
            forced_kill_at = total_chunks // 2
            ingested = 0
            while sessions:
                if ingested == forced_kill_at:
                    ingested += 1  # fire exactly once
                    victim = gateway.worker_of(sorted(sessions)[0])
                    proc = gateway.gateway._procs[victim]
                    if proc.is_alive():
                        os.kill(proc.pid, signal.SIGKILL)
                        proc.join(5.0)
                        n_kills += 1
                sid = str(rng.choice(sorted(sessions)))
                state = sessions[sid]
                roll = rng.random()
                if roll < 0.78:
                    if not state["chunks"]:
                        gateway.close_session(sid)
                        del sessions[sid]
                        continue
                    gateway.ingest(sid, state["chunks"].pop(0))
                    ingested += 1
                elif roll < 0.9:
                    gateway.poll(sid)
                else:
                    gateway.migrate_session(sid, int(rng.integers(0, 2)))
            summaries = gateway.take_summaries()
            stats = gateway.stats()
        journal.close()
        assert n_kills == 1
        assert stats["respawns"] >= 1
        for i, record in enumerate(records):
            expected_summary, _ = reference(
                embedded_classifier, record, standalone_events
            )
            assert summaries[f"s{i}"] == expected_summary
