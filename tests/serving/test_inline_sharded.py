"""Inline worker mode: sharded semantics, one shared batch, no pipes.

``worker_mode="inline"`` runs every worker's ``_WorkerState`` in the
calling process, and co-locates their gateways on one
:class:`~repro.serving.gateway.GatewayGroup` — a single cross-worker
:class:`BeatBatch`, so one flush means ONE classifier pass for the
whole pool.  The mode must keep the sharded tier's entire contract
(bit-exactness, migration, stats, elastic retire) while collapsing the
per-worker batches.
"""

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import ShardedGateway

N_LEADS = 3


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=N_LEADS), seed=s).synthesize(
            12.0, class_mix={"N": 0.6, "V": 0.3, "L": 0.1}, name=f"inline-{s}"
        )
        for s in (71, 72, 73)
    ]


@pytest.fixture(scope="module")
def reference_events(records, embedded_classifier, standalone_events):
    return [
        standalone_events(embedded_classifier, record, record.fs, N_LEADS)
        for record in records
    ]


class _CountingClassifier:
    """Delegating wrapper that records every ``predict`` call."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = []  # rows per call

    def predict(self, X, counter=None):
        X = np.atleast_2d(np.asarray(X))
        self.calls.append(X.shape[0])
        return self._inner.predict(X, counter)


def _drive(gateway, records, block_s=0.4):
    fs = records[0].fs
    block = int(block_s * fs)
    for i in range(len(records)):
        gateway.open_session(f"s{i}", worker=i % gateway.workers)
    events = {f"s{i}": [] for i in range(len(records))}
    offsets = [0] * len(records)
    while any(o < r.n_samples for o, r in zip(offsets, records)):
        for i, record in enumerate(records):
            if offsets[i] < record.n_samples:
                chunk = record.signal[offsets[i] : offsets[i] + block]
                events[f"s{i}"].extend(gateway.ingest(f"s{i}", chunk))
                offsets[i] += block
    for i in range(len(records)):
        events[f"s{i}"].extend(gateway.close_session(f"s{i}"))
    return events


class TestInlineBitExactness:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_standalone(
        self, workers, records, embedded_classifier, reference_events,
        assert_events_equal,
    ):
        with ShardedGateway(
            embedded_classifier, records[0].fs, workers=workers,
            worker_mode="inline", n_leads=N_LEADS, max_batch=16,
        ) as gateway:
            assert gateway.worker_mode == "inline"
            events = _drive(gateway, records)
        for i, expected in enumerate(reference_events):
            assert_events_equal(expected, events[f"s{i}"])

    def test_inline_matches_process_mode(
        self, records, embedded_classifier, assert_events_equal
    ):
        """Same fleet, same knobs: the two modes emit identical events."""
        outcomes = []
        for mode in ("process", "inline"):
            with ShardedGateway(
                embedded_classifier, records[0].fs, workers=2,
                worker_mode=mode, n_leads=N_LEADS, max_batch=8,
            ) as gateway:
                outcomes.append(_drive(gateway, records[:2]))
        for key in outcomes[0]:
            assert_events_equal(outcomes[0][key], outcomes[1][key])


class TestSharedBatch:
    def test_one_predict_per_fleet_flush(self, records, embedded_classifier):
        """A flush classifies EVERY inline worker's beats in one pass.

        With per-worker batches (process mode) ``flush()`` costs one
        ``predict`` per worker holding beats; the inline group's shared
        batch collapses that to exactly one call fleet-wide.
        """
        counting = _CountingClassifier(embedded_classifier)
        fs = records[0].fs
        with ShardedGateway(
            counting, fs, workers=2, worker_mode="inline",
            n_leads=N_LEADS, max_batch=10_000, max_latency_ticks=10_000,
        ) as gateway:
            gateway.open_session("a", worker=0)
            gateway.open_session("b", worker=1)
            # Whole streams: beats queue on BOTH workers, nowhere near
            # the flush thresholds.
            gateway.ingest("a", records[0].signal)
            gateway.ingest("b", records[1].signal)
            assert len(gateway._group.batch) > 0
            calls_before = len(counting.calls)
            flushed = gateway.flush()
            assert flushed > 0
            assert len(counting.calls) == calls_before + 1
            assert counting.calls[-1] == flushed
            gateway.close_session("a")
            gateway.close_session("b")

    def test_ingest_flush_covers_other_workers_beats(
        self, records, embedded_classifier
    ):
        """One worker's max_batch trip drains the other worker's queue
        too — visible via poll without further ingests."""
        fs = records[0].fs
        with ShardedGateway(
            embedded_classifier, fs, workers=2, worker_mode="inline",
            n_leads=N_LEADS, max_batch=12, max_latency_ticks=10_000,
        ) as gateway:
            gateway.open_session("a", worker=0)
            gateway.open_session("b", worker=1)
            # b's whole stream queues below max_batch; a's stream then
            # pushes the SHARED batch over it, so a's ingest flushes
            # b's beats on the other worker.
            assert gateway.ingest("b", records[1].signal) == []
            queued = len(gateway._group.batch)
            assert 0 < queued < 12
            gateway.ingest("a", records[0].signal)
            assert len(gateway.poll("b")) == queued
            gateway.close_session("a")
            gateway.close_session("b")


class TestInlineLifecycle:
    def test_migration_and_stats(
        self, records, embedded_classifier, reference_events, assert_events_equal
    ):
        record = records[0]
        fs = record.fs
        block = int(0.4 * fs)
        with ShardedGateway(
            embedded_classifier, fs, workers=2, worker_mode="inline",
            n_leads=N_LEADS, max_batch=8,
        ) as gateway:
            gateway.open_session("p")
            origin = gateway.worker_of("p")
            events, i = [], 0
            while i < record.n_samples // 2:
                events += gateway.ingest("p", record.signal[i : i + block])
                i += block
            gateway.migrate_session("p", 1 - origin)
            assert gateway.worker_of("p") == 1 - origin
            while i < record.n_samples:
                events += gateway.ingest("p", record.signal[i : i + block])
                i += block
            events += gateway.close_session("p")
            stats = gateway.stats()
        assert_events_equal(reference_events[0], events)
        assert stats["workers"] == 2
        assert stats["n_classified"] == len(events)

    def test_retire_worker_unregisters_from_group(
        self, records, embedded_classifier
    ):
        fs = records[0].fs
        with ShardedGateway(
            embedded_classifier, fs, workers=3, worker_mode="inline",
            n_leads=N_LEADS,
        ) as gateway:
            group = gateway._group
            assert len(group.gateways) == 3
            gateway.open_session("p", worker=2)
            gateway.ingest("p", records[0].signal[: int(2.0 * fs)])
            moved = gateway.retire_worker(2)
            assert moved == 1
            assert gateway.workers == 2
            # The retired worker's gateway must leave the group, or the
            # shared flush would route beats to a dead member.
            assert len(group.gateways) == 2
            gateway.ingest("p", records[0].signal[int(2.0 * fs) : int(4.0 * fs)])
            events = gateway.close_session("p")
            assert events
        assert len(group.gateways) == 0

    def test_unknown_worker_mode_names_allowed_values(self, embedded_classifier):
        with pytest.raises(ValueError, match="process.*inline"):
            ShardedGateway(
                embedded_classifier, 360.0, workers=2, worker_mode="thread"
            )
