"""Shared fixtures/helpers for the serving-layer test modules.

The gateway tier's single contract — per-session event sequences
bit-exact with a standalone inline-mode ``StreamingNode`` — is asserted
the same way everywhere, so the comparison helpers live here.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dsp.streaming import StreamingNode


def pytest_generate_tests(metafunc):
    """Parametrize ``chaos_seed`` arguments, overridable via env.

    A chaos test declares its default seed set with
    ``@pytest.mark.chaos_seeds(0, 1, 2)`` and takes a ``chaos_seed``
    argument.  ``REPRO_CHAOS_SEED`` (a comma-separated list of ints)
    overrides every default set, so a CI failure seed can be replayed
    locally with ``REPRO_CHAOS_SEED=<seed> pytest tests/serving/...``
    without editing the suite.
    """
    if "chaos_seed" not in metafunc.fixturenames:
        return
    marker = metafunc.definition.get_closest_marker("chaos_seeds")
    seeds = list(marker.args) if marker is not None else [0]
    override = os.environ.get("REPRO_CHAOS_SEED")
    if override:
        seeds = [int(part) for part in override.split(",")]
    metafunc.parametrize("chaos_seed", seeds)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "chaos_seeds(*seeds): default seed set for a chaos test"
    )


def _assert_events_equal(expected, actual) -> None:
    """Event sequences identical: peaks, labels, flags, payloads, fiducials."""
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert (a.peak, a.label, a.flagged, a.tx_bytes) == (
            b.peak, b.label, b.flagged, b.tx_bytes
        )
        if a.fiducials is None:
            assert b.fiducials is None
        else:
            np.testing.assert_array_equal(
                a.fiducials.as_array(), b.fiducials.as_array()
            )


def _standalone_events(classifier, record_or_signal, fs, n_leads, upto=None):
    """Reference: one inline-mode node fed the (prefix of the) stream."""
    signal = getattr(record_or_signal, "signal", record_or_signal)
    if upto is not None:
        signal = signal[:upto]
    node = StreamingNode(classifier, fs, n_leads=n_leads)
    return node.push(signal) + node.flush()


@pytest.fixture(scope="session")
def assert_events_equal():
    return _assert_events_equal


@pytest.fixture(scope="session")
def standalone_events():
    return _standalone_events
