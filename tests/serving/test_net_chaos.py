"""Protocol chaos suite: malformed frames, slow readers, killed links.

The socket tier's contract under adversity: a malformed or hostile
peer can only lose its *own* connection (the server survives and other
clients are untouched), a slow reader is backpressured rather than
buffered unboundedly, and a mid-stream disconnect is invisible in the
per-session event sequence — the reconnect-resume handshake restores
it bit-exactly against a standalone ``StreamingNode``, on exactly the
samples that were ingested.

Seeded chaos tests use the shared ``chaos_seeds`` parametrization
(``REPRO_CHAOS_SEED=<seed>`` replays a CI failure locally).
"""

from __future__ import annotations

import select
import socket
import time

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import StreamGateway
from repro.serving.net import GatewayClient, serve_in_thread
from repro.serving.net import protocol as wire

CHUNK = 256


@pytest.fixture(scope="module")
def record():
    return RecordSynthesizer(SynthesisConfig(n_leads=1), seed=71).synthesize(
        20.0, class_mix={"N": 0.6, "V": 0.3, "L": 0.1}, name="chaos"
    )


@pytest.fixture()
def harness(embedded_classifier, record):
    gateway = StreamGateway(
        embedded_classifier, record.fs, n_leads=1, max_batch=16,
        max_latency_ticks=4,
    )
    handle = serve_in_thread(gateway)
    yield handle
    handle.stop()


class RawPeer:
    """A hand-driven protocol peer for sending hostile byte sequences."""

    def __init__(self, address, handshake: bool = True):
        self.sock = socket.create_connection(address, timeout=5.0)
        self.decoder = wire.FrameDecoder()
        self.inbox: list = []
        if handshake:
            self.send(wire.encode_hello())
            hello_ok = self.wait_for(wire.HelloOk)
            assert isinstance(hello_ok, wire.HelloOk)

    def send(self, payload: bytes) -> None:
        self.sock.sendall(wire.pack_frame(payload))

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def pump(self, timeout: float = 0.05) -> None:
        readable, _, _ = select.select([self.sock], [], [], timeout)
        if readable:
            data = self.sock.recv(1 << 20)
            if not data:
                raise ConnectionError("server closed the connection")
            for payload in self.decoder.feed(data):
                self.inbox.append(wire.decode(payload))

    def wait_for(self, kind, timeout: float = 5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for i, message in enumerate(self.inbox):
                if isinstance(message, kind):
                    return self.inbox.pop(i)
            self.pump()
        raise AssertionError(f"no {kind.__name__} frame within {timeout} s")

    def close(self) -> None:
        self.sock.close()


def collect_events(inbox_events):
    out = []
    for message in inbox_events:
        out.extend(message.events)
    return out


class TestMalformedPeers:
    def assert_server_still_serves(self, harness, record, embedded_classifier,
                                   standalone_events, assert_events_equal,
                                   session_id="after-chaos"):
        """A fresh well-behaved client gets full service, bit-exactly."""
        signal = record.signal[: 8 * CHUNK]
        with GatewayClient(harness.host, harness.port, window=4) as client:
            client.open_session(session_id)
            events = []
            for start in range(0, len(signal), CHUNK):
                events.extend(client.ingest(session_id, signal[start:start + CHUNK]))
            events.extend(client.close_session(session_id))
        reference = standalone_events(embedded_classifier, signal, record.fs, 1)
        assert_events_equal(reference, events)

    def test_truncated_frame_kills_only_that_connection(
        self, harness, record, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        peer = RawPeer(harness.address)
        # Header promises 100 bytes; deliver 10 and vanish.
        peer.send_raw((100).to_bytes(4, "little") + b"\x12" * 10)
        peer.close()
        self.assert_server_still_serves(
            harness, record, embedded_classifier,
            standalone_events, assert_events_equal,
        )

    def test_oversized_frame_rejected_without_allocation(
        self, harness, record, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        peer = RawPeer(harness.address)
        # A hostile length prefix far beyond max_frame: the server must
        # drop the connection before buffering any such body.
        peer.send_raw((1 << 31).to_bytes(4, "little"))
        deadline = time.monotonic() + 5.0
        dropped = False
        while time.monotonic() < deadline and not dropped:
            try:
                peer.pump()
            except ConnectionError:
                dropped = True
        assert dropped
        self.assert_server_still_serves(
            harness, record, embedded_classifier,
            standalone_events, assert_events_equal,
        )

    def test_garbage_opcode_drops_the_connection(
        self, harness, record, embedded_classifier,
        standalone_events, assert_events_equal,
    ):
        peer = RawPeer(harness.address)
        peer.send(b"\x7f\xde\xad\xbe\xef")
        peer.close()
        self.assert_server_still_serves(
            harness, record, embedded_classifier,
            standalone_events, assert_events_equal,
        )

    def test_non_hello_first_frame_is_refused(self, harness):
        peer = RawPeer(harness.address, handshake=False)
        peer.send(wire.encode_poll("s", 0))
        error = peer.wait_for(wire.Error)
        assert "HELLO" in error.message
        peer.close()

    def test_ingest_for_unknown_session_reports_async_error(self, harness):
        peer = RawPeer(harness.address)
        peer.send(wire.encode_ingest("ghost", 0, 0, np.zeros(8)))
        error = peer.wait_for(wire.Error)
        assert not error.sync and "ghost" in error.message
        peer.close()


class TestSlowReaderBackpressure:
    def test_unread_events_are_bounded_then_delivered(
        self, embedded_classifier, record, standalone_events, assert_events_equal
    ):
        """A reader that stops reading stalls the pipeline instead of
        ballooning server memory; when it finally drains, every event
        arrives intact and in order."""
        gateway = StreamGateway(
            embedded_classifier, record.fs, n_leads=1, max_batch=4,
            max_latency_ticks=2,
        )
        # Tiny queue: the per-connection burst bound trips immediately.
        handle = serve_in_thread(gateway, queue_bursts=2)
        try:
            peer = RawPeer(handle.address)
            peer.send(wire.encode_open("slow"))
            peer.wait_for(wire.OpenOk)
            signal = record.signal
            # Fire every chunk without reading a single reply; replies
            # queue server-side (bounded) and in the socket buffers.
            n_chunks = 0
            for start in range(0, len(signal), CHUNK):
                peer.send(
                    wire.encode_ingest(
                        "slow", n_chunks, 0, signal[start:start + CHUNK]
                    )
                )
                n_chunks += 1
            # The writer queue holds at most queue_bursts coalesced
            # bursts no matter how far ahead the producer ran.
            inbox_events = [peer.wait_for(wire.Events, timeout=10.0)]
            peer.send(wire.encode_close("slow", 0))
            deadline = time.monotonic() + 15.0
            final = None
            while final is None and time.monotonic() < deadline:
                peer.pump()
                for message in list(peer.inbox):
                    if isinstance(message, wire.Events):
                        peer.inbox.remove(message)
                        inbox_events.append(message)
                        if message.final:
                            final = message
            assert final is not None, "no FINAL events frame after close"
            events = collect_events(inbox_events)
            reference = standalone_events(
                embedded_classifier, signal, record.fs, 1
            )
            assert_events_equal(reference, events)
            peer.close()
        finally:
            handle.stop()


class TestDisconnectResume:
    @pytest.mark.chaos_seeds(0, 1, 2)
    def test_mid_stream_disconnects_are_invisible(
        self, harness, record, embedded_classifier, chaos_seed,
        standalone_events, assert_events_equal,
    ):
        """Forced socket kills at seeded chunk indices leave the event
        sequence identical to an uninterrupted standalone node."""
        rng = np.random.default_rng(chaos_seed)
        signal = record.signal
        chunks = [signal[s:s + CHUNK] for s in range(0, len(signal), CHUNK)]
        kill_at = set(
            rng.choice(np.arange(1, len(chunks)), size=rng.integers(1, 4),
                       replace=False).tolist()
        )
        client = GatewayClient(
            harness.host, harness.port, window=4, backoff_base=0.01
        ).connect()
        client.open_session("chaos")
        events = []
        for i, piece in enumerate(chunks):
            if i in kill_at:
                client._sock.close()  # yank the transport mid-stream
            events.extend(client.ingest("chaos", piece))
        events.extend(client.close_session("chaos"))
        client.close()
        assert client.n_reconnects >= len(kill_at)
        reference = standalone_events(embedded_classifier, signal, record.fs, 1)
        assert_events_equal(reference, events)

    @pytest.mark.chaos_seeds(3, 4)
    def test_disconnect_inside_the_full_window_retransmits(
        self, harness, record, embedded_classifier, chaos_seed,
        standalone_events, assert_events_equal,
    ):
        """Killing the link with a full pipelining window in flight
        forces genuine chunk retransmission on resume — and the event
        sequence still matches the standalone node exactly."""
        rng = np.random.default_rng(chaos_seed)
        signal = record.signal
        chunks = [signal[s:s + CHUNK] for s in range(0, len(signal), CHUNK)]
        window = 6
        kill_at = int(rng.integers(window, len(chunks)))
        client = GatewayClient(
            harness.host, harness.port, window=window, backoff_base=0.01
        ).connect()
        client.open_session("burst")
        events = []
        for i, piece in enumerate(chunks):
            events.extend(client.ingest("burst", piece))
            if i == kill_at:
                # Chunks are in flight (unacked); the kill loses the
                # connection while the replay buffer is non-trivial.
                assert len(client._sessions["burst"].pending) > 0
                client._sock.close()
        events.extend(client.close_session("burst"))
        client.close()
        assert client.n_reconnects >= 1
        reference = standalone_events(embedded_classifier, signal, record.fs, 1)
        assert_events_equal(reference, events)

    @pytest.mark.chaos_seeds(0, 1)
    def test_producer_crash_handoff_preserves_the_prefix(
        self, harness, record, embedded_classifier, chaos_seed,
        standalone_events, assert_events_equal,
    ):
        """A producer that dies without closing leaves a parked session;
        a successor adopts it and the combined event stream is exactly
        the standalone node's on the ingested prefix, then continues."""
        rng = np.random.default_rng(chaos_seed)
        signal = record.signal
        chunks = [signal[s:s + CHUNK] for s in range(0, len(signal), CHUNK)]
        crash_at = int(rng.integers(4, len(chunks) - 2))

        first = GatewayClient(harness.host, harness.port, window=4).connect()
        first.open_session("handoff")
        before = []
        for piece in chunks[:crash_at]:
            before.extend(first.ingest("handoff", piece))
        before.extend(first.poll("handoff"))  # drain what has resolved
        first._sock.close()  # crash: no close_session, no goodbye

        second = GatewayClient(
            harness.host, harness.port, window=4, backoff_base=0.01
        ).connect()
        second.resume_session("handoff", events_received=len(before))
        after = []
        for piece in chunks[crash_at:]:
            after.extend(second.ingest("handoff", piece))
        after.extend(second.close_session("handoff"))
        second.close()

        reference = standalone_events(embedded_classifier, signal, record.fs, 1)
        assert_events_equal(reference, before + after)
        # And the prefix the first producer saw is exactly the
        # standalone node's output on the samples it ingested: the
        # resumed tail never rewrites history.
        n_prefix = len(before)
        assert_events_equal(reference[:n_prefix], before)
