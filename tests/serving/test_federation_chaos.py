"""Federation chaos suite: fleet reshaping + killed links, bit-exactly.

The federation tier's contract under adversity: whatever hosts served
whatever prefixes of a session — through seeded interleavings of
opens, ingests, cross-host migrations, host drains and killed host
connections (with automatic reconnect-resume) over growing/shrinking
host trajectories — every session's event sequence is identical to a
standalone inline-mode ``StreamingNode``.

Seeded chaos tests use the shared ``chaos_seeds`` parametrization
(``REPRO_CHAOS_SEED=<seed>`` replays a CI failure locally).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import FederatedGateway, StreamGateway, synthesize_fleet
from repro.serving.net import serve_in_thread

FS = 360.0
CHUNK = 256


@pytest.fixture(scope="module")
def fleet():
    return synthesize_fleet(4, 8.0, fs=FS, seed=47)


def start_host(classifier):
    gateway = StreamGateway(
        classifier, FS, n_leads=1, max_batch=16, max_latency_ticks=4
    )
    return serve_in_thread(gateway)


class TestSeededInterleavings:
    @pytest.mark.chaos_seeds(0, 1, 2)
    def test_fleet_reshaping_interleaved_with_ingest_stays_bit_exact(
        self, fleet, embedded_classifier, chaos_seed,
        standalone_events, assert_events_equal,
    ):
        """A 1 -> 2 -> 1 host trajectory with seeded staggered opens,
        random cross-host migrations and random host-connection kills
        interleaved between ingest rounds.  Ops are control-plane
        atomic (a kill lands between front-door calls, never inside a
        migration) — the event sequences must be indistinguishable
        from an unperturbed fleet."""
        rng = np.random.default_rng(chaos_seed)
        streams, _ = fleet
        chunks = {
            sid: [sig[s : s + CHUNK] for s in range(0, len(sig), CHUNK)]
            for sid, sig in streams.items()
        }
        base = start_host(embedded_classifier)
        spare = start_host(embedded_classifier)
        handles = [base, spare]
        try:
            with FederatedGateway(
                [base.address], placement="round-robin", window=4,
                client_kwargs={"backoff_base": 0.01},
            ) as fed:
                open_round = {
                    sid: int(rng.integers(0, 3)) for sid in chunks
                }
                cursor = {sid: 0 for sid in chunks}
                events = {sid: [] for sid in chunks}
                last_round = max(
                    open_round[sid] + len(parts)
                    for sid, parts in chunks.items()
                )
                grow_round = 2
                kills = 0
                for round_no in range(last_round):
                    if round_no == grow_round:
                        fed.add_host(spare.address)  # 1 -> 2 hosts
                    if round_no > grow_round:
                        action = rng.choice(
                            ["migrate", "kill", "noop", "noop"]
                        )
                        open_sids = fed.session_ids()
                        if action == "migrate" and fed.hosts > 1 and open_sids:
                            sid = open_sids[int(rng.integers(len(open_sids)))]
                            fed.migrate_session(
                                sid, int(rng.integers(fed.hosts))
                            )
                        elif action == "kill":
                            victim = int(rng.integers(fed.hosts))
                            fed._clients[victim]._sock.close()
                            kills += 1
                    for sid, parts in chunks.items():
                        if round_no == open_round[sid]:
                            fed.open_session(sid)
                        if round_no >= open_round[sid] and cursor[sid] < len(parts):
                            events[sid].extend(
                                fed.ingest(sid, parts[cursor[sid]])
                            )
                            cursor[sid] += 1
                assert all(
                    cursor[sid] == len(parts)
                    for sid, parts in chunks.items()
                )
                while fed.hosts > 1:  # 2 -> 1: lossless drain
                    fed.retire_host(int(rng.integers(fed.hosts)))
                for sid in chunks:
                    events[sid].extend(fed.close_session(sid))
                assert fed.n_scale_events >= 2
        finally:
            for handle in handles:
                handle.stop()
        for sid, signal in streams.items():
            reference = standalone_events(embedded_classifier, signal, FS, 1)
            assert len(events[sid]) > 0
            assert_events_equal(reference, events[sid])


class TestKillResumeAroundMigration:
    @pytest.mark.chaos_seeds(0, 1)
    def test_killed_link_immediately_before_migrate_resumes_then_moves(
        self, fleet, embedded_classifier, chaos_seed,
        standalone_events, assert_events_equal,
    ):
        """The hardest ordering: the source host's connection is dead
        when the cross-host capture starts.  The client must
        reconnect-resume the parked session first, then capture — and
        the moved session's stream stays gapless."""
        rng = np.random.default_rng(chaos_seed)
        streams, _ = fleet
        signal = streams["loadgen-0"]
        parts = [signal[s : s + CHUNK] for s in range(0, len(signal), CHUNK)]
        kill_at = int(rng.integers(2, len(parts) - 2))
        hosts = [start_host(embedded_classifier) for _ in range(2)]
        try:
            with FederatedGateway(
                [h.address for h in hosts], window=4,
                client_kwargs={"backoff_base": 0.01},
            ) as fed:
                fed.open_session("mover", host=0)
                events = []
                for i, piece in enumerate(parts):
                    if i == kill_at:
                        fed._clients[0]._sock.close()  # dead source link
                        fed.migrate_session("mover", 1)
                        assert fed._clients[0].n_reconnects >= 1
                        assert fed.host_of("mover") == 1
                    events.extend(fed.ingest("mover", piece))
                events.extend(fed.close_session("mover"))
        finally:
            for handle in hosts:
                handle.stop()
        reference = standalone_events(embedded_classifier, signal, FS, 1)
        assert_events_equal(reference, events)

    @pytest.mark.chaos_seeds(0, 1)
    def test_killed_links_on_both_hosts_mid_stream(
        self, fleet, embedded_classifier, chaos_seed,
        standalone_events, assert_events_equal,
    ):
        """Every host connection dies at a seeded round while the whole
        fleet streams through the front door; reconnect-resume on each
        link keeps every session's sequence exact."""
        rng = np.random.default_rng(chaos_seed)
        streams, _ = fleet
        chunks = {
            sid: [sig[s : s + CHUNK] for s in range(0, len(sig), CHUNK)]
            for sid, sig in streams.items()
        }
        n_rounds = max(len(parts) for parts in chunks.values())
        kill_rounds = {
            0: int(rng.integers(1, n_rounds)),
            1: int(rng.integers(1, n_rounds)),
        }
        hosts = [start_host(embedded_classifier) for _ in range(2)]
        try:
            with FederatedGateway(
                [h.address for h in hosts], placement="round-robin", window=4,
                client_kwargs={"backoff_base": 0.01},
            ) as fed:
                for sid in chunks:
                    fed.open_session(sid)
                events = {sid: [] for sid in chunks}
                for round_no in range(n_rounds):
                    for host, kill_round in kill_rounds.items():
                        if round_no == kill_round:
                            fed._clients[host]._sock.close()
                    for sid, parts in chunks.items():
                        if round_no < len(parts):
                            events[sid].extend(fed.ingest(sid, parts[round_no]))
                for sid in chunks:
                    events[sid].extend(fed.close_session(sid))
                assert sum(c.n_reconnects for c in fed._clients) >= 2
        finally:
            for handle in hosts:
                handle.stop()
        for sid, signal in streams.items():
            reference = standalone_events(embedded_classifier, signal, FS, 1)
            assert_events_equal(reference, events[sid])
