"""Durability tier: journal stores, write-ahead semantics, supervision.

Three layers under test, bottom-up:

* the :class:`JournalStore` backends (memory / file-per-session /
  sqlite) behind one behavioural contract, including reopen
  persistence and torn-tail tolerance for the durable two;
* :class:`SessionJournal` — the write-ahead policy: snapshot cadence,
  delivered-count accounting, recovery records;
* :class:`SupervisedGateway` — deterministic ``kill -9`` of a worker
  mid-stream, proactive ``check_workers`` sweeps, full-process restart
  via :func:`recover_sessions`, always asserting the recovery
  contract: per-session event sequences bit-exact with a standalone
  ``StreamingNode`` (``test_durability_chaos.py`` stresses the same
  invariant under seeded random kill schedules).
"""

import os
import pickle
import signal

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import (
    FileJournalStore,
    MemoryJournalStore,
    SessionJournal,
    ShardedGateway,
    SqliteJournalStore,
    StreamGateway,
    SupervisedGateway,
    open_journal,
    recover_sessions,
)
from repro.serving.gateway import SessionExport

N_LEADS = 1
FS = 360.0


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=N_LEADS), seed=s).synthesize(
            10.0, class_mix={"N": 0.6, "V": 0.3, "L": 0.1}, name=f"dur-{s}"
        )
        for s in (71, 72)
    ]


@pytest.fixture(scope="module")
def reference_events(records, embedded_classifier, standalone_events):
    return [
        standalone_events(embedded_classifier, record, FS, N_LEADS)
        for record in records
    ]


BACKENDS = ("memory", "file", "sqlite")


def make_store(backend, tmp_path):
    if backend == "memory":
        return MemoryJournalStore()
    if backend == "file":
        return FileJournalStore(str(tmp_path / "journal"))
    return SqliteJournalStore(str(tmp_path / "journal.sqlite3"))


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    store = make_store(request.param, tmp_path)
    yield store
    store.close()


class TestJournalStores:
    """One behavioural contract across every backend."""

    def test_round_trip(self, store):
        store.begin("s", b"open-kwargs")
        store.append_chunk("s", b"c0")
        store.append_chunk("s", b"c1")
        store.add_delivered("s", 3)
        store.add_delivered("s", 2)
        loaded = store.load("s")
        assert loaded.open_blob == b"open-kwargs"
        assert loaded.snapshot is None
        assert loaded.chunks == [b"c0", b"c1"]
        assert loaded.delivered == 5
        assert store.chunk_count("s") == 2
        assert store.session_ids() == ["s"]

    def test_snapshot_truncates_log_and_delivered(self, store):
        store.begin("s", b"meta")
        store.append_chunk("s", b"c0")
        store.add_delivered("s", 4)
        store.put_snapshot("s", b"snap-1")
        loaded = store.load("s")
        assert loaded.snapshot == b"snap-1"
        assert loaded.chunks == []
        assert loaded.delivered == 0
        assert store.chunk_count("s") == 0
        store.append_chunk("s", b"c1")
        assert store.load("s").chunks == [b"c1"]

    def test_begin_resets_history(self, store):
        store.begin("s", b"old")
        store.append_chunk("s", b"c0")
        store.put_snapshot("s", b"snap")
        store.begin("s", b"new")
        loaded = store.load("s")
        assert loaded.open_blob == b"new"
        assert loaded.snapshot is None
        assert loaded.chunks == []
        assert loaded.delivered == 0

    def test_forget_and_unknown(self, store):
        assert store.load("nope") is None
        assert store.chunk_count("nope") == 0
        store.begin("s", b"meta")
        store.append_chunk("s", b"c0")
        store.forget("s")
        assert store.load("s") is None
        assert store.session_ids() == []
        store.forget("s")  # idempotent

    def test_multiple_sessions_are_independent(self, store):
        store.begin("a", b"ma")
        store.begin("b", b"mb")
        store.append_chunk("a", b"ca")
        store.add_delivered("b", 7)
        assert sorted(store.session_ids()) == ["a", "b"]
        assert store.load("a").chunks == [b"ca"]
        assert store.load("a").delivered == 0
        assert store.load("b").chunks == []
        assert store.load("b").delivered == 7


class TestDurableStorePersistence:
    """file/sqlite journals survive a store (process) teardown."""

    @pytest.mark.parametrize("backend", ["file", "sqlite"])
    def test_reopen_sees_everything(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.begin("s", b"meta")
        store.append_chunk("s", b"c0")
        store.put_snapshot("s", b"snap")
        store.append_chunk("s", b"c1")
        store.add_delivered("s", 2)
        store.close()
        reopened = make_store(backend, tmp_path)
        loaded = reopened.load("s")
        assert loaded.open_blob == b"meta"
        assert loaded.snapshot == b"snap"
        assert loaded.chunks == [b"c1"]
        assert loaded.delivered == 2
        assert reopened.chunk_count("s") == 1
        assert reopened.session_ids() == ["s"]
        reopened.close()

    def test_file_store_drops_torn_trailing_record(self, tmp_path):
        store = make_store("file", tmp_path)
        store.begin("s", b"meta")
        store.append_chunk("s", b"complete")
        store.close()
        log = tmp_path / "journal"
        (log_path,) = [p for p in log.iterdir() if p.suffix == ".log"]
        with open(log_path, "ab") as fh:
            fh.write(b"C\x40\x00\x00\x00half-writ")  # 64-byte record, cut off
        reopened = make_store("file", tmp_path)
        assert reopened.load("s").chunks == [b"complete"]
        reopened.close()

    def test_file_store_tokenizes_hostile_session_ids(self, tmp_path):
        store = make_store("file", tmp_path)
        sid = "fleet/node#7 é"
        store.begin(sid, b"meta")
        store.append_chunk(sid, b"c0")
        assert store.session_ids() == [sid]
        assert store.load(sid).chunks == [b"c0"]
        store.close()
        reopened = make_store("file", tmp_path)
        assert reopened.session_ids() == [sid]
        reopened.close()

    def test_sqlite_sync_mode_constructs(self, tmp_path):
        store = SqliteJournalStore(str(tmp_path / "j.sqlite3"), sync=True)
        store.begin("s", b"meta")
        assert store.load("s").open_blob == b"meta"
        store.close()


class TestSessionJournal:
    def test_snapshot_cadence(self):
        journal = SessionJournal(MemoryJournalStore(), snapshot_every=3)
        journal.open("s", {"max_latency_ticks": 4})
        for i in range(2):
            journal.log_chunk("s", np.zeros(5))
            assert not journal.wants_snapshot("s")
        journal.log_chunk("s", np.zeros(5))
        assert journal.wants_snapshot("s")
        journal.snapshot("s", SessionExport(session_id="s", snapshot=None))
        assert not journal.wants_snapshot("s")

    def test_recover_record(self):
        journal = SessionJournal(MemoryJournalStore())
        journal.open("s", {"evict_after_ticks": 9})
        journal.log_chunk("s", [1.0, 2.0])
        journal.delivered("s", 2)
        journal.delivered("s", 0)  # zero deltas are elided
        rec = journal.recover("s")
        assert rec.session_id == "s"
        assert rec.open_kwargs == {"evict_after_ticks": 9}
        assert rec.export is None
        assert len(rec.chunks) == 1
        np.testing.assert_array_equal(rec.chunks[0], [1.0, 2.0])
        assert rec.chunks[0].dtype == np.float64
        assert rec.delivered == 2
        assert journal.recover("unknown") is None

    def test_snapshot_subsumes_log(self):
        journal = SessionJournal(MemoryJournalStore())
        journal.open("s", None)
        journal.log_chunk("s", [1.0])
        journal.delivered("s", 1)
        export = SessionExport(session_id="s", snapshot=None)
        journal.snapshot("s", export)
        rec = journal.recover("s")
        assert rec.export.session_id == "s"
        assert rec.chunks == []
        assert rec.delivered == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="snapshot_every"):
            SessionJournal(MemoryJournalStore(), snapshot_every=0)

    def test_open_journal_backends(self, tmp_path):
        for backend in BACKENDS:
            journal = open_journal(
                str(tmp_path / backend), backend, snapshot_every=5
            )
            assert journal.snapshot_every == 5
            journal.open("s", None)
            assert journal.session_ids() == ["s"]
            journal.close()
        assert os.path.exists(tmp_path / "sqlite" / "journal.sqlite3")
        explicit = open_journal(str(tmp_path / "named.db"), "sqlite")
        explicit.close()
        assert os.path.exists(tmp_path / "named.db")
        with pytest.raises(ValueError, match="memory"):
            open_journal(str(tmp_path), "redis")


def feed(gateway, sid, signal, block, start=0, stop=None):
    """Ingest ``signal[start:stop]`` in ``block``-sample chunks."""
    events, i = [], start
    stop = len(signal) if stop is None else stop
    while i < stop:
        events += gateway.ingest(sid, signal[i : i + min(block, stop - i)])
        i += block
    return events


def kill_worker(supervised, index):
    proc = supervised.gateway._procs[index]
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(5.0)


class TestSupervisedRecovery:
    """Deterministic worker kills; the chaos suite randomizes them."""

    def test_kill_mid_stream_recovers_bit_exact(
        self, records, embedded_classifier, reference_events,
        assert_events_equal, tmp_path,
    ):
        record = records[0]
        block = int(0.4 * FS)
        journal = open_journal(str(tmp_path), "file", snapshot_every=4)
        with SupervisedGateway(
            embedded_classifier, FS, journal=journal, workers=2,
            n_leads=N_LEADS, max_batch=8,
        ) as gateway:
            gateway.open_session("p")
            events = feed(
                gateway, "p", record.signal, block, stop=record.n_samples // 2
            )
            kill_worker(gateway, gateway.worker_of("p"))
            events += feed(
                gateway, "p", record.signal, block, start=record.n_samples // 2
            )
            events += gateway.close_session("p")
            stats = gateway.stats()
        assert_events_equal(reference_events[0], events)
        assert stats["recoveries"] >= 1
        assert stats["sessions_recovered"] >= 1
        assert stats["respawns"] >= 1

    def test_recovery_without_snapshot_replays_from_open(
        self, records, embedded_classifier, reference_events,
        assert_events_equal,
    ):
        """snapshot_every larger than the stream: recovery has no
        snapshot and must rebuild from open kwargs + full chunk log."""
        record = records[1]
        block = int(0.5 * FS)
        with SupervisedGateway(
            embedded_classifier, FS, journal=MemoryJournalStore(),
            snapshot_every=10_000, workers=2, n_leads=N_LEADS,
        ) as gateway:
            gateway.open_session("p")
            events = feed(
                gateway, "p", record.signal, block, stop=record.n_samples // 3
            )
            assert gateway.journal.recover("p").export is None
            kill_worker(gateway, gateway.worker_of("p"))
            events += feed(
                gateway, "p", record.signal, block, start=record.n_samples // 3
            )
            events += gateway.close_session("p")
        assert_events_equal(reference_events[1], events)

    def test_check_workers_is_proactive(
        self, records, embedded_classifier, reference_events,
        assert_events_equal,
    ):
        """A supervisor heartbeat heals the pool before any session
        call touches the dead worker."""
        record = records[0]
        block = int(0.5 * FS)
        with SupervisedGateway(
            embedded_classifier, FS, journal=MemoryJournalStore(),
            snapshot_every=3, workers=2, n_leads=N_LEADS,
        ) as gateway:
            gateway.open_session("p")
            events = feed(
                gateway, "p", record.signal, block, stop=record.n_samples // 2
            )
            victim = gateway.worker_of("p")
            kill_worker(gateway, victim)
            assert gateway.check_workers() == 1
            assert not gateway.gateway._procs[victim] is None
            assert gateway.gateway._procs[victim].is_alive()
            assert gateway.check_workers() == 0  # idempotent when healthy
            events += feed(
                gateway, "p", record.signal, block, start=record.n_samples // 2
            )
            events += gateway.close_session("p")
        assert_events_equal(reference_events[0], events)

    def test_kill_both_workers_with_two_sessions(
        self, records, embedded_classifier, reference_events,
        assert_events_equal,
    ):
        block = int(0.4 * FS)
        with SupervisedGateway(
            embedded_classifier, FS, journal=MemoryJournalStore(),
            snapshot_every=5, workers=2, n_leads=N_LEADS, max_batch=8,
        ) as gateway:
            collected = {}
            for i, record in enumerate(records):
                gateway.open_session(f"s{i}")
                collected[f"s{i}"] = feed(
                    gateway, f"s{i}", record.signal, block,
                    stop=record.n_samples // 2,
                )
            for index in range(2):
                kill_worker(gateway, index)
            for i, record in enumerate(records):
                collected[f"s{i}"] += feed(
                    gateway, f"s{i}", record.signal, block,
                    start=record.n_samples // 2,
                )
                collected[f"s{i}"] += gateway.close_session(f"s{i}")
        for i, expected in enumerate(reference_events):
            assert_events_equal(expected, collected[f"s{i}"])

    def test_migration_carries_the_journal(
        self, records, embedded_classifier, reference_events,
        assert_events_equal,
    ):
        """Moving a session between workers refreshes its snapshot, so
        killing the *new* owner still recovers bit-exactly."""
        record = records[0]
        block = int(0.4 * FS)
        with SupervisedGateway(
            embedded_classifier, FS, journal=MemoryJournalStore(),
            snapshot_every=10_000, workers=2, n_leads=N_LEADS,
        ) as gateway:
            gateway.open_session("p")
            events = feed(
                gateway, "p", record.signal, block, stop=record.n_samples // 2
            )
            origin = gateway.worker_of("p")
            gateway.migrate_session("p", 1 - origin)
            assert gateway.journal.recover("p").export is not None
            kill_worker(gateway, 1 - origin)
            events += feed(
                gateway, "p", record.signal, block, start=record.n_samples // 2
            )
            events += gateway.close_session("p")
        assert_events_equal(reference_events[0], events)

    def test_close_and_release_forget_the_journal(
        self, records, embedded_classifier,
    ):
        with SupervisedGateway(
            embedded_classifier, FS, journal=MemoryJournalStore(),
            workers=2, n_leads=N_LEADS,
        ) as gateway:
            gateway.open_session("a")
            gateway.open_session("b")
            gateway.ingest("a", records[0].signal[: int(FS)])
            assert sorted(gateway.journal.session_ids()) == ["a", "b"]
            gateway.close_session("a")
            assert gateway.journal.session_ids() == ["b"]
            export = gateway.release_session("b")
            assert gateway.journal.session_ids() == []
            sid = gateway.import_session(export)
            assert sid == "b"
            assert gateway.journal.session_ids() == ["b"]
            gateway.close_session("b")

    def test_inline_workers_are_not_recoverable(self, embedded_classifier):
        with SupervisedGateway(
            embedded_classifier, FS, journal=MemoryJournalStore(),
            workers=2, worker_mode="inline", n_leads=N_LEADS,
        ) as gateway:
            with pytest.raises(RuntimeError, match="inline"):
                gateway.gateway.respawn_worker(0)
            assert gateway.check_workers() == 0  # nothing dead, no-op

    def test_stats_and_construction_variants(
        self, embedded_classifier, tmp_path,
    ):
        with SupervisedGateway(
            embedded_classifier, FS, journal=str(tmp_path / "j"),
            workers=2, n_leads=N_LEADS,
        ) as gateway:
            assert isinstance(gateway.journal, SessionJournal)
            stats = gateway.stats()
            assert stats["recoveries"] == 0
            assert stats["sessions_recovered"] == 0
            assert stats["respawns"] == 0
            assert stats["workers"] == 2
        with pytest.raises(ValueError, match="max_recover_attempts"):
            SupervisedGateway(
                embedded_classifier, FS, journal=MemoryJournalStore(),
                max_recover_attempts=0,
            )

    def test_private_attribute_access_stays_private(
        self, embedded_classifier,
    ):
        with SupervisedGateway(
            embedded_classifier, FS, journal=MemoryJournalStore(),
            workers=1, n_leads=N_LEADS,
        ) as gateway:
            with pytest.raises(AttributeError):
                gateway._no_such_thing


class TestRestartRecovery:
    """Full-process restarts: the journal outlives the gateway."""

    def test_supervised_restart_over_the_same_store(
        self, records, embedded_classifier, reference_events,
        assert_events_equal, tmp_path,
    ):
        record = records[0]
        block = int(0.4 * FS)
        half = record.n_samples // 2
        events = []
        journal = open_journal(str(tmp_path), "file", snapshot_every=4)
        with SupervisedGateway(
            embedded_classifier, FS, journal=journal, workers=2,
            n_leads=N_LEADS,
        ) as gateway:
            gateway.open_session("p")
            events += feed(gateway, "p", record.signal, block, stop=half)
            # shutdown() reaps the pool but keeps the journal: this is
            # the crash/restart boundary.
        journal.close()
        journal = open_journal(str(tmp_path), "file", snapshot_every=4)
        with SupervisedGateway(
            embedded_classifier, FS, journal=journal, workers=2,
            n_leads=N_LEADS,
        ) as gateway:
            assert gateway.check_workers() == 1  # the orphaned session
            events += gateway.poll("p")  # backlog accepted pre-restart
            events += feed(gateway, "p", record.signal, block, start=half)
            events += gateway.close_session("p")
        journal.close()
        assert_events_equal(reference_events[0], events)

    @pytest.mark.parametrize("backend", ["file", "sqlite"])
    def test_recover_sessions_on_a_stream_gateway(
        self, backend, records, embedded_classifier, reference_events,
        assert_events_equal, tmp_path,
    ):
        """The single-process restart path: recover_sessions rebuilds
        journaled sessions on any gateway tier, here a StreamGateway
        journaling into the same store (so durability continues)."""
        record = records[1]
        block = int(0.5 * FS)
        third = record.n_samples // 3
        journal = open_journal(str(tmp_path), backend, snapshot_every=3)
        first = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS, journal=journal
        )
        first.open_session("p", max_latency_ticks=4)
        events = feed(first, "p", record.signal, block, stop=third)
        del first  # simulated crash: no close, no export
        journal.close()

        journal = open_journal(str(tmp_path), backend, snapshot_every=3)
        second = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS, journal=journal
        )
        backlog = recover_sessions(journal, second)
        assert set(backlog) == {"p"}
        events += backlog["p"]
        events += feed(second, "p", record.signal, block, start=third)
        events += second.close_session("p")
        journal.close()
        assert_events_equal(reference_events[1], events)

    def test_recover_sessions_on_a_sharded_gateway(
        self, records, embedded_classifier, reference_events,
        assert_events_equal, tmp_path,
    ):
        record = records[0]
        block = int(0.5 * FS)
        half = record.n_samples // 2
        journal = open_journal(str(tmp_path), "file", snapshot_every=4)
        with ShardedGateway(
            embedded_classifier, FS, workers=2, n_leads=N_LEADS,
            journal=journal,
        ) as first:
            first.open_session("p")
            events = feed(first, "p", record.signal, block, stop=half)
        journal.close()

        journal = open_journal(str(tmp_path), "file", snapshot_every=4)
        with ShardedGateway(
            embedded_classifier, FS, workers=2, n_leads=N_LEADS,
            journal=journal,
        ) as second:
            backlog = recover_sessions(journal, second)
            events += backlog["p"]
            events += feed(second, "p", record.signal, block, start=half)
            events += second.close_session("p")
        journal.close()
        assert_events_equal(reference_events[0], events)


class TestShardedJournalHooks:
    """The sharded gateway's journal bookkeeping, without a supervisor."""

    def test_counters_survive_migration(
        self, records, embedded_classifier,
    ):
        """Satellite regression: ``_move`` must carry the inbox audit
        trail (n_accepted / n_dropped / high_water), not just drops."""
        record = records[0]
        with ShardedGateway(
            embedded_classifier, FS, workers=2, n_leads=N_LEADS,
            inbox_capacity=64,
        ) as gateway:
            gateway.open_session("p")
            for i in range(3):
                gateway.ingest(
                    "p", record.signal[i * 100 : (i + 1) * 100]
                )
            before = gateway._inboxes["p"]
            accepted, high = before.n_accepted, before.high_water
            assert accepted == 3
            gateway.migrate_session("p", 1 - gateway.worker_of("p"))
            after = gateway._inboxes["p"]
            assert after is not before
            assert after.n_accepted == accepted
            assert after.high_water >= high
            assert after.n_dropped == before.n_dropped
            gateway.close_session("p")

    def test_eviction_forgets_the_journal(self, embedded_classifier):
        journal = SessionJournal(MemoryJournalStore())
        with ShardedGateway(
            embedded_classifier, FS, workers=1, n_leads=N_LEADS,
            journal=journal, evict_after_ticks=2,
        ) as gateway:
            gateway.open_session("idle")
            gateway.open_session("busy")
            for i in range(8):
                gateway.ingest("busy", np.zeros(64))
            gateway.flush()  # synchronous: drains the eviction notice
            assert "idle" not in gateway.session_ids()
            assert journal.session_ids() == ["busy"]
            gateway.close_session("busy")
