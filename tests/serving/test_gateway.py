"""StreamGateway: live-session multiplexing vs standalone StreamingNode.

The gateway's contract is bit-exactness per session: whatever the
chunk sizes, session interleaving order and batch-flush boundaries,
every session's event sequence equals a standalone inline-mode
``StreamingNode`` fed the same samples.
"""

import pickle

import numpy as np
import pytest

from repro.dsp.streaming import StreamingNode
from repro.serving import StreamGateway, serve_round_robin
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig

N_LEADS = 3


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=N_LEADS), seed=s).synthesize(
            20.0, class_mix={"N": 0.6, "V": 0.3, "L": 0.1}, name=f"sess-{s}"
        )
        for s in (61, 62, 63)
    ]


@pytest.fixture(scope="module")
def reference_events(records, embedded_classifier):
    """Per-session standalone (inline-mode) StreamingNode events."""
    out = []
    for record in records:
        node = StreamingNode(embedded_classifier, record.fs, n_leads=N_LEADS)
        out.append(node.push(record.signal) + node.flush())
    return out


def assert_events_equal(expected, actual):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert (a.peak, a.label, a.flagged, a.tx_bytes) == (
            b.peak, b.label, b.flagged, b.tx_bytes
        )
        if a.fiducials is None:
            assert b.fiducials is None
        else:
            np.testing.assert_array_equal(a.fiducials.as_array(), b.fiducials.as_array())


def run_gateway(gateway, records, schedule):
    """Feed sessions per ``schedule`` (list of (session_index, chunk));
    return per-session event lists."""
    for i in range(len(records)):
        gateway.open_session(f"s{i}")
    events = [[] for _ in records]
    for i, chunk in schedule:
        events[i].extend(gateway.ingest(f"s{i}", chunk))
    for i in range(len(records)):
        events[i].extend(gateway.close_session(f"s{i}"))
    return events


def round_robin_schedule(records, block_s=0.5):
    schedule = []
    offsets = [0] * len(records)
    block = int(block_s * records[0].fs)
    while any(o < r.n_samples for o, r in zip(offsets, records)):
        for i, record in enumerate(records):
            if offsets[i] < record.n_samples:
                schedule.append((i, record.signal[offsets[i] : offsets[i] + block]))
                offsets[i] += block
    return schedule


def random_schedule(records, rng):
    queues = []
    for record in records:
        chunks, i = [], 0
        while i < record.n_samples:
            n = int(rng.integers(5, 1200))
            chunks.append(record.signal[i : i + n])
            i += n
        queues.append(chunks)
    schedule = []
    while any(queues):
        i = int(rng.choice([j for j, q in enumerate(queues) if q]))
        schedule.append((i, queues[i].pop(0)))
    return schedule


class TestGatewayBitExactness:
    def test_round_robin_matches_standalone(
        self, records, embedded_classifier, reference_events
    ):
        gateway = StreamGateway(embedded_classifier, records[0].fs, n_leads=N_LEADS)
        events = run_gateway(gateway, records, round_robin_schedule(records))
        for expected, actual in zip(reference_events, events):
            assert_events_equal(expected, actual)
        assert any(e.flagged for session in events for e in session)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_chunks_and_interleaving(
        self, seed, records, embedded_classifier, reference_events
    ):
        """Seeded property test: any chunking, any interleaving."""
        rng = np.random.default_rng(seed)
        gateway = StreamGateway(
            embedded_classifier,
            records[0].fs,
            n_leads=N_LEADS,
            max_batch=int(rng.integers(1, 48)),
            max_latency_ticks=int(rng.integers(1, 16)),
        )
        events = run_gateway(gateway, records, random_schedule(records, rng))
        for expected, actual in zip(reference_events, events):
            assert_events_equal(expected, actual)

    def test_serve_round_robin_helper(
        self, records, embedded_classifier, reference_events
    ):
        """The canonical driver (used by CLI, example and benchmark)
        returns complete, bit-exact per-session sequences."""
        gateway = StreamGateway(embedded_classifier, records[0].fs, n_leads=N_LEADS)
        events = serve_round_robin(
            gateway,
            {f"s{i}": record.signal for i, record in enumerate(records)},
            int(0.5 * records[0].fs),
        )
        assert gateway.n_sessions == 0  # all sessions closed
        for i, expected in enumerate(reference_events):
            assert_events_equal(expected, events[f"s{i}"])
        with pytest.raises(ValueError, match="chunk"):
            serve_round_robin(gateway, {"x": records[0].signal}, 0)

    @pytest.mark.parametrize("max_batch,max_latency", [(1, 1), (16, 4), (512, 512)])
    def test_flush_boundary_invariance(
        self, max_batch, max_latency, records, embedded_classifier, reference_events
    ):
        """Batch-flush boundaries never change event content or order."""
        gateway = StreamGateway(
            embedded_classifier,
            records[0].fs,
            n_leads=N_LEADS,
            max_batch=max_batch,
            max_latency_ticks=max_latency,
        )
        events = run_gateway(gateway, records, round_robin_schedule(records))
        for expected, actual in zip(reference_events, events):
            assert_events_equal(expected, actual)


class TestGatewayBatching:
    def test_batches_amortize_the_classifier(self, records, embedded_classifier):
        """Multi-session load actually batches: far fewer classifier
        passes than beats."""
        gateway = StreamGateway(
            embedded_classifier, records[0].fs, n_leads=N_LEADS, max_batch=64
        )
        events = run_gateway(gateway, records, round_robin_schedule(records))
        n_events = sum(len(session) for session in events)
        assert n_events > 0
        assert gateway.n_classified >= n_events
        assert gateway.n_flushes < gateway.n_classified / 4  # >4 beats/pass on average

    def test_latency_bound_flushes_quiet_batches(self, records, embedded_classifier):
        """A beat never waits more than max_latency_ticks ingests, even
        when the size bound is never reached."""
        record = records[0]
        gateway = StreamGateway(
            embedded_classifier,
            record.fs,
            n_leads=N_LEADS,
            max_batch=10_000,
            max_latency_ticks=3,
        )
        gateway.open_session("solo")
        block = int(0.5 * record.fs)
        waited = 0
        for i in range(0, record.n_samples, block):
            gateway.ingest("solo", record.signal[i : i + block])
            waited = waited + 1 if gateway.n_queued else 0
            assert waited <= 3
        gateway.close_session("solo")

    def test_size_bound_flushes_full_batches(self, records, embedded_classifier):
        gateway = StreamGateway(
            embedded_classifier,
            records[0].fs,
            n_leads=N_LEADS,
            max_batch=4,
            max_latency_ticks=10_000,
        )
        run_gateway(gateway, records, round_robin_schedule(records))
        assert gateway.n_queued == 0
        assert gateway.n_flushes >= gateway.n_classified // 8  # bounded batch size

    def test_events_routed_to_their_own_session(self, records, embedded_classifier):
        """A flush triggered by one session's ingest resolves other
        sessions' beats — delivered via their own poll, never leaked."""
        gateway = StreamGateway(
            embedded_classifier,
            records[0].fs,
            n_leads=N_LEADS,
            max_batch=1,  # flush on every ingest that queued a beat
        )
        gateway.open_session("a")
        gateway.open_session("b")
        record = records[0]
        a_events = gateway.ingest("a", record.signal)  # whole record at once
        assert gateway.poll("a") == []
        # b's quiet ingest triggers no cross-delivery of a's events.
        b_events = gateway.ingest("b", records[1].signal[: int(0.1 * record.fs)])
        assert all(e.peak < record.n_samples for e in a_events)
        assert b_events == []
        a_events += gateway.close_session("a")
        peaks = [e.peak for e in a_events]
        assert peaks == sorted(peaks) and len(peaks) > 10


class TestGatewaySessions:
    def test_lifecycle_and_validation(self, records, embedded_classifier):
        fs = records[0].fs
        with pytest.raises(ValueError, match="max_batch"):
            StreamGateway(embedded_classifier, fs, max_batch=0)
        with pytest.raises(ValueError, match="max_latency_ticks"):
            StreamGateway(embedded_classifier, fs, max_latency_ticks=0)
        gateway = StreamGateway(embedded_classifier, fs, n_leads=N_LEADS)
        gateway.open_session("x")
        with pytest.raises(ValueError, match="already open"):
            gateway.open_session("x")
        with pytest.raises(KeyError):
            gateway.ingest("ghost", np.zeros((10, N_LEADS)))
        with pytest.raises(KeyError):
            gateway.close_session("ghost")
        assert gateway.n_sessions == 1 and gateway.session_ids() == ["x"]
        gateway.close_session("x")
        assert gateway.n_sessions == 0

    def test_export_import_migrates_mid_stream(
        self, records, embedded_classifier, reference_events
    ):
        """A session exported from one gateway and imported (through
        pickle) into another continues bit-exactly."""
        record = records[0]
        fs = record.fs
        block = int(0.4 * fs)
        source = StreamGateway(embedded_classifier, fs, n_leads=N_LEADS, max_batch=8)
        target = StreamGateway(embedded_classifier, fs, n_leads=N_LEADS, max_batch=8)
        source.open_session("p")
        events, i = [], 0
        while i < record.n_samples // 2:
            events += source.ingest("p", record.signal[i : i + block])
            i += block
        export = pickle.loads(pickle.dumps(source.export_session("p")))
        assert source.poll("p") == []  # events moved into the export
        target.import_session(export)
        events += target.poll("p")
        while i < record.n_samples:
            events += target.ingest("p", record.signal[i : i + block])
            i += block
        events += target.close_session("p")
        assert_events_equal(reference_events[0], events)

    def test_import_rejects_open_id(self, records, embedded_classifier):
        gateway = StreamGateway(embedded_classifier, records[0].fs, n_leads=N_LEADS)
        gateway.open_session("p")
        export = gateway.export_session("p")
        with pytest.raises(ValueError, match="already open"):
            gateway.import_session(export)
