"""Codec tests for the wire protocol: round-trips, pinning, rejection.

Every message type must survive encode -> frame -> decode unchanged;
chunk payloads must be dtype/endianness-pinned regardless of the input
array's flavor; and corrupt input — oversized length prefixes,
truncated payloads, trailing bytes, unknown opcodes — must be rejected
with :class:`~repro.serving.net.protocol.ProtocolError` before it can
do damage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.delineation import BeatFiducials
from repro.dsp.streaming import StreamBeatEvent
from repro.serving.net import protocol as wire


def roundtrip(payload: bytes):
    """encode -> frame -> deframe -> decode, the full wire path."""
    decoder = wire.FrameDecoder()
    frames = decoder.feed(wire.pack_frame(payload))
    assert len(frames) == 1 and decoder.pending_bytes == 0
    return wire.decode(frames[0])


def make_event(i: int, with_fiducials: bool) -> StreamBeatEvent:
    fiducials = (
        BeatFiducials.from_array(np.arange(9, dtype=np.int64) * 7 + i)
        if with_fiducials
        else None
    )
    return StreamBeatEvent(
        peak=100 * i + 3,
        label=i % 3,
        flagged=bool(i % 2),
        tx_bytes=11 + i,
        fiducials=fiducials,
    )


class TestControlRoundTrips:
    def test_hello(self):
        message = roundtrip(wire.encode_hello(123456))
        assert isinstance(message, wire.Hello)
        assert message.max_frame == 123456
        assert message.version == wire.PROTOCOL_VERSION

    def test_hello_ok(self):
        message = roundtrip(wire.encode_hello_ok(777))
        assert isinstance(message, wire.HelloOk)
        assert message.max_frame == 777

    def test_open_plain(self):
        message = roundtrip(wire.encode_open("wearable-17"))
        assert message == wire.Open("wearable-17", None, None)

    def test_open_with_qos(self):
        message = roundtrip(
            wire.encode_open("s", max_latency_ticks=4, evict_after_ticks=9)
        )
        assert message == wire.Open("s", 4, 9)

    def test_open_ok(self):
        assert roundtrip(wire.encode_open_ok("s")) == wire.OpenOk("s")

    @pytest.mark.parametrize("encoder,cls", [
        (wire.encode_poll, wire.Poll),
        (wire.encode_close, wire.Close),
        (wire.encode_resume, wire.Resume),
    ])
    def test_ack_carriers(self, encoder, cls):
        message = roundtrip(encoder("sid", 42))
        assert message == cls("sid", 42)

    def test_resume_ok(self):
        assert roundtrip(wire.encode_resume_ok("s", 9)) == wire.ResumeOk("s", 9)

    def test_error_sync_and_async(self):
        sync = roundtrip(wire.encode_error("s", "boom", sync=True))
        assert sync == wire.Error("s", True, "boom")
        parked = roundtrip(wire.encode_error("s", "later", sync=False))
        assert parked == wire.Error("s", False, "later")

    def test_unicode_session_id(self):
        message = roundtrip(wire.encode_poll("séance-42", 0))
        assert message.session_id == "séance-42"


class TestIngestCodec:
    def test_one_dimensional(self):
        chunk = np.linspace(-1.0, 1.0, 64)
        message = roundtrip(wire.encode_ingest("s", 3, 17, chunk))
        assert isinstance(message, wire.Ingest)
        assert (message.seq, message.ack_events) == (3, 17)
        assert message.chunk.ndim == 1
        np.testing.assert_array_equal(message.chunk, chunk)

    def test_two_dimensional(self):
        chunk = np.arange(30, dtype=float).reshape(10, 3)
        message = roundtrip(wire.encode_ingest("s", 0, 0, chunk))
        assert message.chunk.shape == (10, 3)
        np.testing.assert_array_equal(message.chunk, chunk)

    def test_zero_length_chunk(self):
        message = roundtrip(wire.encode_ingest("s", 5, 2, np.empty(0)))
        assert message.chunk.shape == (0,)
        assert message.seq == 5

    def test_dtype_is_pinned_to_le_float64(self):
        # Whatever flavor the producer holds — float32, int, or a
        # big-endian float64 — the wire carries <f8 and the decoded
        # values match bit-for-bit after the float64 conversion.
        for source in (
            np.arange(8, dtype=np.float32),
            np.arange(8, dtype=np.int16),
            np.arange(8, dtype=">f8"),
        ):
            message = roundtrip(wire.encode_ingest("s", 0, 0, source))
            assert message.chunk.dtype == np.dtype("<f8")
            np.testing.assert_array_equal(
                message.chunk, np.asarray(source, dtype="<f8")
            )

    def test_wire_bytes_are_raw_samples(self):
        # Zero-copy contract: the payload tail IS arr.tobytes() — no
        # pickle framing around the samples.
        chunk = np.arange(16, dtype="<f8")
        payload = wire.encode_ingest("sid", 1, 2, chunk)
        assert payload.endswith(chunk.tobytes())

    def test_non_contiguous_input(self):
        base = np.arange(40, dtype=float)
        view = base[::2]
        message = roundtrip(wire.encode_ingest("s", 0, 0, view))
        np.testing.assert_array_equal(message.chunk, view)

    def test_three_dimensional_rejected(self):
        with pytest.raises(wire.ProtocolError, match="1-D or 2-D"):
            wire.encode_ingest("s", 0, 0, np.zeros((2, 2, 2)))

    def test_too_many_leads_rejected(self):
        with pytest.raises(wire.ProtocolError, match="n_leads"):
            wire.encode_ingest("s", 0, 0, np.zeros((4, 256)))


class TestEventsCodec:
    def test_round_trip_mixed_fiducials(self):
        events = [make_event(i, with_fiducials=(i % 2 == 0)) for i in range(7)]
        message = roundtrip(
            wire.encode_events("s", 12, 30, events, flags=wire.FLAG_SYNC)
        )
        assert isinstance(message, wire.Events)
        assert (message.acked_seq, message.base_index) == (12, 30)
        assert message.sync and not message.final
        assert len(message.events) == len(events)
        for original, decoded in zip(events, message.events):
            assert (original.peak, original.label, original.flagged,
                    original.tx_bytes) == (
                decoded.peak, decoded.label, decoded.flagged, decoded.tx_bytes
            )
            if original.fiducials is None:
                assert decoded.fiducials is None
            else:
                np.testing.assert_array_equal(
                    original.fiducials.as_array(), decoded.fiducials.as_array()
                )

    def test_empty_batch(self):
        message = roundtrip(wire.encode_events("s", 0, 0, []))
        assert message.events == [] and not message.sync and not message.final

    def test_final_flag(self):
        message = roundtrip(
            wire.encode_events("s", 1, 2, [], flags=wire.FLAG_FINAL)
        )
        assert message.final and not message.sync


class TestFraming:
    def test_decoder_handles_byte_by_byte_delivery(self):
        payloads = [wire.encode_poll("a", 1), wire.encode_open_ok("b")]
        stream = b"".join(wire.pack_frame(p) for p in payloads)
        decoder = wire.FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert out == payloads
        assert decoder.pending_bytes == 0

    def test_decoder_handles_many_frames_in_one_feed(self):
        payloads = [wire.encode_poll(f"s{i}", i) for i in range(5)]
        stream = b"".join(wire.pack_frame(p) for p in payloads)
        assert wire.FrameDecoder().feed(stream) == payloads

    def test_decoder_buffers_partial_frame(self):
        frame = wire.pack_frame(wire.encode_poll("s", 0))
        decoder = wire.FrameDecoder()
        assert decoder.feed(frame[:-3]) == []
        assert decoder.pending_bytes == len(frame) - 3
        assert decoder.feed(frame[-3:]) == [frame[4:]]

    def test_oversized_length_prefix_rejected_before_buffering(self):
        decoder = wire.FrameDecoder(max_frame=64)
        with pytest.raises(wire.FrameTooLarge):
            decoder.feed((1 << 20).to_bytes(4, "little"))

    def test_pack_frame_rejects_oversized_payload(self):
        with pytest.raises(wire.FrameTooLarge):
            wire.pack_frame(b"x" * 65, max_frame=64)

    def test_max_frame_bounds_ingest_chunks(self):
        # A chunk bigger than the negotiated bound must be rejected at
        # the sender, not silently shipped.
        payload = wire.encode_ingest("s", 0, 0, np.zeros(1024))
        with pytest.raises(wire.FrameTooLarge):
            wire.pack_frame(payload, max_frame=512)


class TestDecodeRejection:
    def test_empty_payload(self):
        with pytest.raises(wire.ProtocolError, match="empty"):
            wire.decode(b"")

    def test_unknown_opcode(self):
        with pytest.raises(wire.ProtocolError, match="unknown opcode"):
            wire.decode(bytes([0x7F]))

    def test_bad_magic(self):
        payload = bytearray(wire.encode_hello())
        payload[1] ^= 0xFF
        with pytest.raises(wire.ProtocolError, match="magic"):
            wire.decode(bytes(payload))

    def test_bad_version(self):
        import struct

        payload = bytes([0x01]) + struct.Struct("<IHQ").pack(
            wire.PROTOCOL_MAGIC, wire.PROTOCOL_VERSION + 1, 1024
        )
        with pytest.raises(wire.ProtocolError, match="version"):
            wire.decode(payload)

    def test_truncated_payload(self):
        payload = wire.encode_ingest("s", 0, 0, np.arange(8.0))
        with pytest.raises(wire.ProtocolError, match="truncated"):
            wire.decode(payload[:-5])

    def test_trailing_bytes(self):
        with pytest.raises(wire.ProtocolError, match="trailing"):
            wire.decode(wire.encode_poll("s", 0) + b"\x00")

    def test_fiducial_count_exceeding_events(self):
        import struct

        payload = (
            bytes([0x20])
            + struct.Struct("<H").pack(1) + b"s"
            + struct.Struct("<QQBII").pack(0, 0, 0, 1, 2)
        )
        with pytest.raises(wire.ProtocolError, match="fiducial"):
            wire.decode(payload)


class TestFederationFrames:
    """The cross-host control plane: MIGRATE / MIGRATE_OK / STATS."""

    def test_migrate_capture_request(self):
        message = roundtrip(wire.encode_migrate("wearable-3", 42))
        assert isinstance(message, wire.Migrate)
        assert (message.session_id, message.ack_events) == ("wearable-3", 42)
        assert message.blob is None

    def test_migrate_import_request(self):
        blob = b"\x00\x01pickled-export\xff" * 3
        message = roundtrip(wire.encode_migrate("s", 7, blob))
        assert message.blob == blob
        assert (message.session_id, message.ack_events) == ("s", 7)

    def test_migrate_empty_blob_is_an_import(self):
        """b'' means 'import this (empty) capture', not 'capture'."""
        message = roundtrip(wire.encode_migrate("s", 0, b""))
        assert message.blob == b""
        assert roundtrip(wire.encode_migrate("s", 0)).blob is None

    def test_migrate_ok_with_and_without_blob(self):
        taken = roundtrip(wire.encode_migrate_ok("s", 9, b"capture"))
        assert isinstance(taken, wire.MigrateOk)
        assert (taken.session_id, taken.next_seq, taken.blob) == ("s", 9, b"capture")
        imported = roundtrip(wire.encode_migrate_ok("s", 0))
        assert imported.blob == b""

    def test_stats_round_trip(self):
        assert isinstance(roundtrip(wire.encode_stats()), wire.Stats)

    def test_stats_ok_carries_nested_rollup(self):
        stats = {
            "n_sessions": 3,
            "per_host": [{"n_sessions": 2, "n_queued": 0}, {"n_sessions": 1}],
            "migrations": 7,
        }
        message = roundtrip(wire.encode_stats_ok(stats))
        assert isinstance(message, wire.StatsOk)
        assert message.stats == stats

    def test_stats_ok_rejects_malformed_json(self):
        with pytest.raises(wire.ProtocolError, match="STATS_OK"):
            wire.decode(bytes([0x1A]) + b"{not json")

    def test_stats_ok_rejects_non_object(self):
        with pytest.raises(wire.ProtocolError, match="JSON object"):
            wire.decode(bytes([0x1A]) + b"[1,2,3]")

    def test_migrate_truncated_rejected(self):
        payload = wire.encode_migrate("session", 1)
        with pytest.raises(wire.ProtocolError):
            wire.decode(payload[:-3])

    def test_stats_trailing_bytes_rejected(self):
        with pytest.raises(wire.ProtocolError, match="trailing"):
            wire.decode(wire.encode_stats() + b"\x00")
