"""ShardedGateway: the multi-worker gateway vs standalone StreamingNode.

The sharded tier inherits the single-process gateway's contract — every
session's event sequence is bit-exact with a standalone inline-mode
``StreamingNode`` — for every worker count, and adds placement:
hash-assignment, explicit placement, and live migration between
workers (and across gateway tiers, via the shared ``SessionExport``).
"""

import pickle

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import (
    EXECUTORS,
    SessionExport,
    ShardedGateway,
    StreamGateway,
    serve_round_robin,
)

N_LEADS = 3


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=N_LEADS), seed=s).synthesize(
            15.0, class_mix={"N": 0.6, "V": 0.3, "L": 0.1}, name=f"sess-{s}"
        )
        for s in (91, 92, 93)
    ]


@pytest.fixture(scope="module")
def reference_events(records, embedded_classifier, standalone_events):
    return [
        standalone_events(embedded_classifier, record, record.fs, N_LEADS)
        for record in records
    ]


class TestShardedBitExactness:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_round_robin_matches_standalone(
        self, workers, records, embedded_classifier, reference_events,
        assert_events_equal,
    ):
        """serve_round_robin drives the sharded gateway unchanged; the
        per-session sequences are bit-exact for every worker count."""
        fs = records[0].fs
        with ShardedGateway(
            embedded_classifier, fs, workers=workers, n_leads=N_LEADS, max_batch=16
        ) as gateway:
            events = serve_round_robin(
                gateway,
                {f"s{i}": record.signal for i, record in enumerate(records)},
                int(0.5 * fs),
            )
            assert gateway.n_sessions == 0
            stats = gateway.stats()
        for i, expected in enumerate(reference_events):
            assert_events_equal(expected, events[f"s{i}"])
        assert stats["n_classified"] == sum(len(e) for e in reference_events)
        assert stats["n_flushes"] >= 1

    def test_migration_between_workers_mid_stream(
        self, records, embedded_classifier, reference_events, assert_events_equal
    ):
        """A session moved to another worker mid-stream continues
        bit-exactly (release + import under the hood)."""
        record = records[0]
        fs = record.fs
        block = int(0.4 * fs)
        with ShardedGateway(
            embedded_classifier, fs, workers=2, n_leads=N_LEADS, max_batch=8
        ) as gateway:
            gateway.open_session("p")
            origin = gateway.worker_of("p")
            events, i = [], 0
            while i < record.n_samples // 2:
                events += gateway.ingest("p", record.signal[i : i + block])
                i += block
            gateway.migrate_session("p", 1 - origin)
            assert gateway.worker_of("p") == 1 - origin
            while i < record.n_samples:
                events += gateway.ingest("p", record.signal[i : i + block])
                i += block
            events += gateway.close_session("p")
        assert_events_equal(reference_events[0], events)

    def test_cross_tier_migration(
        self, records, embedded_classifier, reference_events, assert_events_equal
    ):
        """SessionExport is one currency: a session can leave a sharded
        gateway and resume on a plain StreamGateway (through pickle,
        i.e. across hosts), and vice versa."""
        record = records[1]
        fs = record.fs
        block = int(0.4 * fs)
        single = StreamGateway(embedded_classifier, fs, n_leads=N_LEADS)
        events, i = [], 0
        with ShardedGateway(
            embedded_classifier, fs, workers=2, n_leads=N_LEADS
        ) as sharded:
            sharded.open_session("p")
            while i < record.n_samples // 3:
                events += sharded.ingest("p", record.signal[i : i + block])
                i += block
            export = pickle.loads(pickle.dumps(sharded.release_session("p")))
            assert sharded.n_sessions == 0
            single.import_session(export)
            while i < 2 * record.n_samples // 3:
                events += single.ingest("p", record.signal[i : i + block])
                i += block
            sharded.import_session(single.release_session("p"))
            while i < record.n_samples:
                events += sharded.ingest("p", record.signal[i : i + block])
                i += block
            events += sharded.close_session("p")
        assert_events_equal(reference_events[1], events)

    def test_poll_fetches_cross_session_flushes(
        self, records, embedded_classifier
    ):
        """Events resolved by another session's flush on the same worker
        are reachable via poll, without ingesting more samples."""
        record = records[0]
        fs = records[0].fs
        with ShardedGateway(
            embedded_classifier, fs, workers=2, n_leads=N_LEADS, max_batch=1
        ) as gateway:
            gateway.open_session("a", worker=0)
            gateway.open_session("b", worker=0)
            gateway.ingest("a", record.signal)  # whole stream; flushes repeatedly
            gateway.ingest("b", records[1].signal[: int(0.1 * fs)])
            polled = gateway.poll("a")
            assert len(polled) >= 5
            peaks = [e.peak for e in polled]
            assert peaks == sorted(peaks)
            gateway.close_session("a")
            gateway.close_session("b")


class TestShardedSessions:
    def test_lifecycle_and_placement(self, records, embedded_classifier):
        fs = records[0].fs
        with ShardedGateway(
            embedded_classifier, fs, workers=3, n_leads=N_LEADS
        ) as gateway:
            gateway.open_session("x")
            assert gateway.session_ids() == ["x"]
            assert 0 <= gateway.worker_of("x") < 3
            with pytest.raises(ValueError, match="already open"):
                gateway.open_session("x")
            with pytest.raises(KeyError, match="no open session"):
                gateway.ingest("ghost", np.zeros((10, N_LEADS)))
            with pytest.raises(KeyError, match="no open session"):
                gateway.close_session("ghost")
            gateway.open_session("y", worker=2)
            assert gateway.worker_of("y") == 2
            assert gateway.n_sessions == 2
            gateway.close_session("x")
            gateway.close_session("y")
            assert gateway.n_sessions == 0

    def test_hash_assignment_is_stable(self, records, embedded_classifier):
        """The same id lands on the same worker in any two pools of the
        same size (CRC-32, not the per-process salted hash)."""
        fs = records[0].fs
        with ShardedGateway(embedded_classifier, fs, workers=4) as a:
            with ShardedGateway(embedded_classifier, fs, workers=4) as b:
                for sid in ("alpha", "beta", "gamma", "delta"):
                    assert a._place(sid) == b._place(sid)

    def test_import_rejects_open_id(self, records, embedded_classifier):
        fs = records[0].fs
        with ShardedGateway(
            embedded_classifier, fs, workers=2, n_leads=N_LEADS
        ) as gateway:
            gateway.open_session("p")
            export = gateway.export_session("p")
            with pytest.raises(ValueError, match="already open"):
                gateway.import_session(export)
            gateway.close_session("p")

    def test_migrate_validates_target(self, records, embedded_classifier):
        fs = records[0].fs
        with ShardedGateway(embedded_classifier, fs, workers=2) as gateway:
            gateway.open_session("p")
            with pytest.raises(ValueError, match=r"worker must be in \[0, 2\)"):
                gateway.migrate_session("p", 2)
            with pytest.raises(KeyError, match="no open session"):
                gateway.migrate_session("ghost", 0)
            gateway.migrate_session("p", gateway.worker_of("p"))  # no-op allowed


class TestShardedValidation:
    """Constructor errors name the allowed values, like executors.py."""

    def test_workers_bound_named(self, embedded_classifier):
        with pytest.raises(ValueError, match=r"workers must be >= 1, got 0"):
            ShardedGateway(embedded_classifier, 360.0, workers=0)
        with pytest.raises(ValueError, match=r"workers must be >= 1, got -2"):
            ShardedGateway(embedded_classifier, 360.0, workers=-2)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(max_batch=0), r"max_batch must be >= 1, got 0"),
            (dict(max_latency_ticks=0), r"max_latency_ticks must be >= 1, got 0"),
            (dict(evict_after_ticks=0), r"evict_after_ticks must be >= 1, got 0"),
            (dict(inbox_capacity=0), r"inbox_capacity must be >= 1, got 0"),
        ],
    )
    def test_bounds_named(self, kwargs, match, embedded_classifier):
        with pytest.raises(ValueError, match=match):
            ShardedGateway(embedded_classifier, 360.0, **kwargs)

    def test_unknown_inbox_policy_names_allowed_values(self, embedded_classifier):
        """The error must teach the caller what IS accepted."""
        with pytest.raises(ValueError) as excinfo:
            ShardedGateway(embedded_classifier, 360.0, inbox_policy="spill")
        message = str(excinfo.value)
        assert "spill" in message
        for name in ("block", "drop"):
            assert name in message

    def test_stream_gateway_bounds_named(self, embedded_classifier):
        """StreamGateway phrases its bounds the same way (shared
        validate_at_least), including the new QoS knobs."""
        with pytest.raises(ValueError, match=r"max_batch must be >= 1, got 0"):
            StreamGateway(embedded_classifier, 360.0, max_batch=0)
        with pytest.raises(
            ValueError, match=r"max_latency_ticks must be >= 1, got -1"
        ):
            StreamGateway(embedded_classifier, 360.0, max_latency_ticks=-1)
        with pytest.raises(ValueError, match=r"evict_after_ticks must be >= 1, got 0"):
            StreamGateway(embedded_classifier, 360.0, evict_after_ticks=0)
        gateway = StreamGateway(embedded_classifier, 360.0)
        with pytest.raises(ValueError, match=r"max_latency_ticks must be >= 1"):
            gateway.open_session("s", max_latency_ticks=0)
        with pytest.raises(ValueError, match=r"evict_after_ticks must be >= 1"):
            gateway.open_session("s", evict_after_ticks=0)

    def test_invalid_construction_leaves_no_processes(self, embedded_classifier):
        """Validation happens before any worker is spawned."""
        import multiprocessing

        before = len(multiprocessing.active_children())
        for kwargs in (dict(workers=0), dict(max_batch=0), dict(inbox_policy="x")):
            with pytest.raises(ValueError):
                ShardedGateway(embedded_classifier, 360.0, **kwargs)
        assert len(multiprocessing.active_children()) == before

    def test_executors_export_inbox_policies(self):
        from repro.serving import INBOX_POLICIES
        from repro.serving.executors import validate_inbox_policy

        assert INBOX_POLICIES == ("block", "drop")
        assert EXECUTORS == ("serial", "threads", "processes")
        assert validate_inbox_policy("block") == "block"

    def test_session_export_defaults_are_backward_compatible(self):
        """Old-style three-field exports (pre-QoS pickles) still load."""
        export = SessionExport(session_id="s", snapshot=None)
        assert export.max_latency_ticks is None
        assert export.evict_after_ticks is None


class TestLifecycleTeardown:
    """The best-effort ``__del__`` reap must never raise — not during
    interpreter shutdown with already-closed worker pipes, and not on a
    half-constructed instance."""

    def test_shutdown_tolerates_closed_pipes(self, embedded_classifier):
        gateway = ShardedGateway(embedded_classifier, 360.0, workers=2)
        for conn in gateway._conns:
            conn.close()  # simulate interpreter-shutdown teardown order
        gateway.shutdown()  # must not raise
        gateway.shutdown()  # idempotent
        gateway.__del__()   # and the destructor stays silent

    def test_del_on_shut_down_gateway_is_silent(self, embedded_classifier):
        gateway = ShardedGateway(embedded_classifier, 360.0, workers=1)
        gateway.shutdown()
        gateway.__del__()  # must not raise after a clean shutdown

    def test_del_on_unconstructed_instance_is_silent(self):
        """__init__ may raise before any attribute exists (e.g. a
        validation error); the destructor still runs."""
        ShardedGateway.__del__(object.__new__(ShardedGateway))

    def test_failed_validation_still_collects_quietly(self, embedded_classifier):
        with pytest.raises(ValueError):
            ShardedGateway(embedded_classifier, 360.0, workers=0)
        # The half-constructed instance from the raising __init__ was
        # collected without its __del__ raising (nothing to assert
        # beyond "no exception escaped the collector" — gc it now).
        import gc

        gc.collect()
