"""Fault-injection / property suite for the live serving layer.

Seeded random schedules of ``open`` / ``ingest`` / ``migrate`` /
``evict`` / ``close`` interleavings — arbitrary chunk sizes, arbitrary
session interleaving, migrations mid-stream (between in-process
gateways, through pickle, and between the workers of a sharded pool),
random manual flushes and early closes — always asserting the one
contract everything above the DSP layer leans on: **per-session event
sequences are bit-exact with a standalone inline-mode
``StreamingNode``** fed exactly the samples the session ingested.

The scaling chaos class adds live **scale events** to the schedule:
the worker pool grows 1 -> 4, shrinks 4 -> 1, or oscillates
(``add_worker`` / ``retire_worker`` / ``AutoBalancer`` rebalance
ticks interleaved with everything above), with the same per-session
bit-exactness asserted on exactly the ingested prefixes.

Every schedule is derived from a seeded ``default_rng``, so failures
replay deterministically; set ``REPRO_CHAOS_SEED=<int>[,<int>...]`` to
override the seed sets (see ``conftest.pytest_generate_tests``).
"""

import pickle

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import AutoBalancer, ShardedGateway, StreamGateway

N_LEADS = 1


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=N_LEADS), seed=s).synthesize(
            12.0, class_mix={"N": 0.55, "V": 0.3, "L": 0.15}, name=f"chaos-{s}"
        )
        for s in (101, 102, 103)
    ]


def chunk_queue(record, rng):
    """Split a record into random 5..700-sample ingest chunks."""
    chunks, i = [], 0
    while i < record.n_samples:
        n = int(rng.integers(5, 700))
        chunks.append(record.signal[i : i + n])
        i += n
    return chunks


def random_gateway_kwargs(rng):
    return dict(
        max_batch=int(rng.integers(1, 48)),
        max_latency_ticks=int(rng.integers(1, 16)),
    )


class TestInterGatewayChaos:
    """Random schedules over a pair of in-process gateways."""

    @pytest.mark.chaos_seeds(0, 1, 2, 3)
    def test_random_schedule_with_migration_is_bit_exact(
        self, chaos_seed, records, embedded_classifier, assert_events_equal,
        standalone_events,
    ):
        rng = np.random.default_rng(chaos_seed)
        fs = records[0].fs
        gateways = [
            StreamGateway(
                embedded_classifier, fs, n_leads=N_LEADS, **random_gateway_kwargs(rng)
            )
            for _ in range(2)
        ]
        sessions = {}
        for i, record in enumerate(records):
            home = int(rng.integers(0, 2))
            sessions[f"s{i}"] = dict(
                record=record,
                chunks=chunk_queue(record, rng),
                fed=0,
                home=home,
                events=[],
            )
            gateways[home].open_session(f"s{i}")
        n_migrations = 0

        def close(sid):
            state = sessions.pop(sid)
            state["events"] += gateways[state["home"]].close_session(sid)
            assert_events_equal(
                standalone_events(
                    embedded_classifier, state["record"], fs, N_LEADS,
                    upto=state["fed"],
                ),
                state["events"],
            )

        while sessions:
            sid = str(rng.choice(sorted(sessions)))
            state = sessions[sid]
            roll = rng.random()
            if roll < 0.62:
                if not state["chunks"]:
                    close(sid)
                    continue
                chunk = state["chunks"].pop(0)
                state["events"] += gateways[state["home"]].ingest(sid, chunk)
                state["fed"] += len(chunk)
            elif roll < 0.82:
                export = gateways[state["home"]].release_session(sid)
                if rng.random() < 0.5:  # sometimes cross a (simulated) host
                    export = pickle.loads(pickle.dumps(export))
                state["home"] = 1 - state["home"]
                gateways[state["home"]].import_session(export)
                n_migrations += 1
            elif roll < 0.93:
                state["events"] += gateways[state["home"]].poll(sid)
            elif roll < 0.97:
                gateways[int(rng.integers(0, 2))].flush_batch()
            else:
                close(sid)  # early close, mid-stream
        assert n_migrations > 0


class TestShardedChaos:
    """Random schedules over the multi-worker gateway, every pool size."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.chaos_seeds(0, 1)
    def test_random_schedule_with_worker_migration_is_bit_exact(
        self, workers, chaos_seed, records, embedded_classifier,
        assert_events_equal, standalone_events,
    ):
        rng = np.random.default_rng(100 * workers + chaos_seed)
        fs = records[0].fs
        with ShardedGateway(
            embedded_classifier, fs, workers=workers, n_leads=N_LEADS,
            **random_gateway_kwargs(rng),
        ) as gateway:
            sessions = {}
            for i, record in enumerate(records):
                sessions[f"s{i}"] = dict(
                    record=record, chunks=chunk_queue(record, rng), fed=0, events=[]
                )
                gateway.open_session(f"s{i}")
            n_migrations = 0

            def close(sid):
                state = sessions.pop(sid)
                state["events"] += gateway.close_session(sid)
                assert_events_equal(
                    standalone_events(
                        embedded_classifier, state["record"], fs, N_LEADS,
                        upto=state["fed"],
                    ),
                    state["events"],
                )

            while sessions:
                sid = str(rng.choice(sorted(sessions)))
                state = sessions[sid]
                roll = rng.random()
                if roll < 0.62:
                    if not state["chunks"]:
                        close(sid)
                        continue
                    chunk = state["chunks"].pop(0)
                    state["events"] += gateway.ingest(sid, chunk)
                    state["fed"] += len(chunk)
                elif roll < 0.86:
                    gateway.migrate_session(sid, int(rng.integers(0, workers)))
                    n_migrations += 1
                elif roll < 0.94:
                    state["events"] += gateway.poll(sid)
                elif roll < 0.97:
                    gateway.flush()
                else:
                    close(sid)
            if workers > 1:
                assert n_migrations > 0


class TestEvictionChaos:
    """Random schedules where slow sessions get evicted mid-stream."""

    @pytest.mark.chaos_seeds(0, 1, 2)
    def test_evicted_sessions_emit_their_exact_remainder(
        self, chaos_seed, records, embedded_classifier, assert_events_equal,
        standalone_events,
    ):
        rng = np.random.default_rng(1000 + chaos_seed)
        fs = records[0].fs
        evicted = {}
        gateway = StreamGateway(
            embedded_classifier, fs, n_leads=N_LEADS,
            evict_after_ticks=int(rng.integers(3, 8)),
            on_evict=lambda sid, events: evicted.update({sid: events}),
            **random_gateway_kwargs(rng),
        )
        sessions = {}
        for i, record in enumerate(records):
            # Each session abandons its stream at a random point; the
            # survivors' ticks then evict it.
            stop_after = int(rng.integers(1, record.n_samples))
            sessions[f"s{i}"] = dict(
                record=record, chunks=chunk_queue(record, rng), fed=0, events=[],
                stop_after=stop_after,
            )
            gateway.open_session(f"s{i}")
        live = set(sessions)
        while live:
            still_feeding = [
                sid for sid in sorted(live)
                if sid in gateway.session_ids()
                and sessions[sid]["chunks"]
                and sessions[sid]["fed"] < sessions[sid]["stop_after"]
            ]
            for sid in sorted(live - set(gateway.session_ids())):
                live.discard(sid)  # evicted under us
            if not still_feeding:
                # Everyone alive is done feeding: close the remainder.
                for sid in sorted(live & set(gateway.session_ids())):
                    sessions[sid]["events"] += gateway.close_session(sid)
                    live.discard(sid)
                continue
            sid = str(rng.choice(still_feeding))
            state = sessions[sid]
            chunk = state["chunks"].pop(0)
            state["events"] += gateway.ingest(sid, chunk)
            state["fed"] += len(chunk)
        for sid, state in sessions.items():
            events = state["events"] + evicted.get(sid, [])
            assert_events_equal(
                standalone_events(
                    embedded_classifier, state["record"], fs, N_LEADS,
                    upto=state["fed"],
                ),
                events,
            )
        assert evicted  # at least one session actually got evicted


class TestScalingChaos:
    """Random schedules with live scale events on an elastic pool.

    The worker pool grows 1 -> 4, shrinks 4 -> 1, or oscillates while
    sessions open late, ingest random chunks, migrate (explicitly and
    via ``AutoBalancer`` rebalance ticks), get evicted mid-stream and
    close early — per-session event sequences must stay bit-exact with
    a standalone node on exactly the ingested prefixes through it all.
    """

    @pytest.mark.parametrize("trajectory", ["grow", "shrink", "oscillate"])
    @pytest.mark.chaos_seeds(0, 1)
    def test_scale_events_preserve_bit_exactness(
        self, trajectory, chaos_seed, records, embedded_classifier,
        assert_events_equal, standalone_events,
    ):
        rng = np.random.default_rng(
            5000 + 10 * chaos_seed + {"grow": 0, "shrink": 1, "oscillate": 2}[trajectory]
        )
        fs = records[0].fs
        start_workers = {"grow": 1, "shrink": 4, "oscillate": 2}[trajectory]
        evicted = {}
        placement = str(rng.choice(["hash", "least-loaded", "round-robin"]))
        with ShardedGateway(
            embedded_classifier, fs, workers=start_workers, n_leads=N_LEADS,
            placement=placement,
            evict_after_ticks=int(rng.integers(25, 60)),
            on_evict=lambda sid, events: evicted.update({sid: events}),
            **random_gateway_kwargs(rng),
        ) as gateway:
            balancer = AutoBalancer(
                gateway, imbalance_threshold=1, cooldown_ticks=0,
                max_migrations_per_tick=2,
            )
            sessions = {}
            for i in range(5):  # more sessions than records: reuse streams
                record = records[i % len(records)]
                sessions[f"s{i}"] = dict(
                    record=record, chunks=chunk_queue(record, rng), fed=0,
                    events=[], open=False, done=False,
                )
            # A couple of sessions are live from the start; the rest
            # open at random points of the schedule.
            for sid in ("s0", "s1"):
                gateway.open_session(sid)
                sessions[sid]["open"] = True
            n_scale_ups = n_scale_downs = 0
            max_workers = 4

            def finish(sid, final_events):
                state = sessions[sid]
                state["events"] += final_events
                state["done"] = True
                assert_events_equal(
                    standalone_events(
                        embedded_classifier, state["record"], fs, N_LEADS,
                        upto=state["fed"],
                    ),
                    state["events"],
                )

            def close_out(sid):
                events = gateway.close_session(sid)
                # An eviction that crossed this close in flight already
                # has its tail folded into the close's return value.
                evicted.pop(sid, None)
                finish(sid, events)

            def sweep_evicted():
                for sid in list(sessions):
                    state = sessions[sid]
                    if (
                        state["open"] and not state["done"]
                        and sid not in gateway.session_ids()
                    ):
                        # The on_evict hook carried the complete final
                        # event sequence when the notice was drained.
                        finish(sid, evicted.pop(sid))

            while any(not s["done"] for s in sessions.values()):
                sweep_evicted()
                unopened = [
                    sid for sid, s in sessions.items() if not s["open"]
                ]
                live = [
                    sid for sid, s in sessions.items()
                    if s["open"] and not s["done"] and sid in gateway.session_ids()
                ]
                if not live and not unopened:
                    continue  # remaining sessions are being evicted
                roll = rng.random()
                if (roll < 0.08 or not live) and unopened:
                    sid = str(rng.choice(unopened))
                    gateway.open_session(sid)
                    sessions[sid]["open"] = True
                    continue
                if roll < 0.16:  # scale event, per trajectory
                    if trajectory == "grow" and gateway.workers < max_workers:
                        gateway.add_worker()
                        n_scale_ups += 1
                    elif trajectory == "shrink" and gateway.workers > 1:
                        gateway.retire_worker(int(rng.integers(0, gateway.workers)))
                        n_scale_downs += 1
                    elif trajectory == "oscillate":
                        if gateway.workers == 1 or (
                            gateway.workers < max_workers and rng.random() < 0.5
                        ):
                            gateway.add_worker()
                            n_scale_ups += 1
                        else:
                            gateway.retire_worker(
                                int(rng.integers(0, gateway.workers))
                            )
                            n_scale_downs += 1
                    continue
                if roll < 0.22:
                    balancer.tick()  # load-aware rebalance
                    continue
                sid = str(rng.choice(sorted(live)))
                state = sessions[sid]
                roll = rng.random()
                try:
                    if roll < 0.70:
                        if not state["chunks"]:
                            close_out(sid)
                            continue
                        chunk = state["chunks"][0]
                        got = gateway.ingest(sid, chunk)
                        state["chunks"].pop(0)
                        state["events"] += got
                        state["fed"] += len(chunk)
                    elif roll < 0.82:
                        gateway.migrate_session(
                            sid, int(rng.integers(0, gateway.workers))
                        )
                    elif roll < 0.92:
                        state["events"] += gateway.poll(sid)
                    elif roll < 0.96:
                        gateway.flush()
                    else:
                        close_out(sid)
                except KeyError:
                    # Evicted between the liveness check and the call
                    # (the ingest drains the eviction notice first and
                    # never ships the chunk); the sweep picks it up.
                    assert sid not in gateway.session_ids()
            sweep_evicted()
            if trajectory == "grow":
                assert gateway.workers > 1 and n_scale_ups > 0
            elif trajectory == "shrink":
                assert n_scale_downs > 0
            else:
                assert n_scale_ups > 0 and n_scale_downs > 0
            assert gateway.stats()["scale_events"] == n_scale_ups + n_scale_downs
