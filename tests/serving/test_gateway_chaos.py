"""Fault-injection / property suite for the live serving layer.

Seeded random schedules of ``open`` / ``ingest`` / ``migrate`` /
``evict`` / ``close`` interleavings — arbitrary chunk sizes, arbitrary
session interleaving, migrations mid-stream (between in-process
gateways, through pickle, and between the workers of a sharded pool),
random manual flushes and early closes — always asserting the one
contract everything above the DSP layer leans on: **per-session event
sequences are bit-exact with a standalone inline-mode
``StreamingNode``** fed exactly the samples the session ingested.

Every schedule is derived from a seeded ``default_rng``, so failures
replay deterministically.
"""

import pickle

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import ShardedGateway, StreamGateway

N_LEADS = 1


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=N_LEADS), seed=s).synthesize(
            12.0, class_mix={"N": 0.55, "V": 0.3, "L": 0.15}, name=f"chaos-{s}"
        )
        for s in (101, 102, 103)
    ]


def chunk_queue(record, rng):
    """Split a record into random 5..700-sample ingest chunks."""
    chunks, i = [], 0
    while i < record.n_samples:
        n = int(rng.integers(5, 700))
        chunks.append(record.signal[i : i + n])
        i += n
    return chunks


def random_gateway_kwargs(rng):
    return dict(
        max_batch=int(rng.integers(1, 48)),
        max_latency_ticks=int(rng.integers(1, 16)),
    )


class TestInterGatewayChaos:
    """Random schedules over a pair of in-process gateways."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_schedule_with_migration_is_bit_exact(
        self, seed, records, embedded_classifier, assert_events_equal,
        standalone_events,
    ):
        rng = np.random.default_rng(seed)
        fs = records[0].fs
        gateways = [
            StreamGateway(
                embedded_classifier, fs, n_leads=N_LEADS, **random_gateway_kwargs(rng)
            )
            for _ in range(2)
        ]
        sessions = {}
        for i, record in enumerate(records):
            home = int(rng.integers(0, 2))
            sessions[f"s{i}"] = dict(
                record=record,
                chunks=chunk_queue(record, rng),
                fed=0,
                home=home,
                events=[],
            )
            gateways[home].open_session(f"s{i}")
        n_migrations = 0

        def close(sid):
            state = sessions.pop(sid)
            state["events"] += gateways[state["home"]].close_session(sid)
            assert_events_equal(
                standalone_events(
                    embedded_classifier, state["record"], fs, N_LEADS,
                    upto=state["fed"],
                ),
                state["events"],
            )

        while sessions:
            sid = str(rng.choice(sorted(sessions)))
            state = sessions[sid]
            roll = rng.random()
            if roll < 0.62:
                if not state["chunks"]:
                    close(sid)
                    continue
                chunk = state["chunks"].pop(0)
                state["events"] += gateways[state["home"]].ingest(sid, chunk)
                state["fed"] += len(chunk)
            elif roll < 0.82:
                export = gateways[state["home"]].release_session(sid)
                if rng.random() < 0.5:  # sometimes cross a (simulated) host
                    export = pickle.loads(pickle.dumps(export))
                state["home"] = 1 - state["home"]
                gateways[state["home"]].import_session(export)
                n_migrations += 1
            elif roll < 0.93:
                state["events"] += gateways[state["home"]].poll(sid)
            elif roll < 0.97:
                gateways[int(rng.integers(0, 2))].flush_batch()
            else:
                close(sid)  # early close, mid-stream
        assert n_migrations > 0


class TestShardedChaos:
    """Random schedules over the multi-worker gateway, every pool size."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_schedule_with_worker_migration_is_bit_exact(
        self, workers, seed, records, embedded_classifier, assert_events_equal,
        standalone_events,
    ):
        rng = np.random.default_rng(100 * workers + seed)
        fs = records[0].fs
        with ShardedGateway(
            embedded_classifier, fs, workers=workers, n_leads=N_LEADS,
            **random_gateway_kwargs(rng),
        ) as gateway:
            sessions = {}
            for i, record in enumerate(records):
                sessions[f"s{i}"] = dict(
                    record=record, chunks=chunk_queue(record, rng), fed=0, events=[]
                )
                gateway.open_session(f"s{i}")
            n_migrations = 0

            def close(sid):
                state = sessions.pop(sid)
                state["events"] += gateway.close_session(sid)
                assert_events_equal(
                    standalone_events(
                        embedded_classifier, state["record"], fs, N_LEADS,
                        upto=state["fed"],
                    ),
                    state["events"],
                )

            while sessions:
                sid = str(rng.choice(sorted(sessions)))
                state = sessions[sid]
                roll = rng.random()
                if roll < 0.62:
                    if not state["chunks"]:
                        close(sid)
                        continue
                    chunk = state["chunks"].pop(0)
                    state["events"] += gateway.ingest(sid, chunk)
                    state["fed"] += len(chunk)
                elif roll < 0.86:
                    gateway.migrate_session(sid, int(rng.integers(0, workers)))
                    n_migrations += 1
                elif roll < 0.94:
                    state["events"] += gateway.poll(sid)
                elif roll < 0.97:
                    gateway.flush()
                else:
                    close(sid)
            if workers > 1:
                assert n_migrations > 0


class TestEvictionChaos:
    """Random schedules where slow sessions get evicted mid-stream."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_evicted_sessions_emit_their_exact_remainder(
        self, seed, records, embedded_classifier, assert_events_equal,
        standalone_events,
    ):
        rng = np.random.default_rng(1000 + seed)
        fs = records[0].fs
        evicted = {}
        gateway = StreamGateway(
            embedded_classifier, fs, n_leads=N_LEADS,
            evict_after_ticks=int(rng.integers(3, 8)),
            on_evict=lambda sid, events: evicted.update({sid: events}),
            **random_gateway_kwargs(rng),
        )
        sessions = {}
        for i, record in enumerate(records):
            # Each session abandons its stream at a random point; the
            # survivors' ticks then evict it.
            stop_after = int(rng.integers(1, record.n_samples))
            sessions[f"s{i}"] = dict(
                record=record, chunks=chunk_queue(record, rng), fed=0, events=[],
                stop_after=stop_after,
            )
            gateway.open_session(f"s{i}")
        live = set(sessions)
        while live:
            still_feeding = [
                sid for sid in sorted(live)
                if sid in gateway.session_ids()
                and sessions[sid]["chunks"]
                and sessions[sid]["fed"] < sessions[sid]["stop_after"]
            ]
            for sid in sorted(live - set(gateway.session_ids())):
                live.discard(sid)  # evicted under us
            if not still_feeding:
                # Everyone alive is done feeding: close the remainder.
                for sid in sorted(live & set(gateway.session_ids())):
                    sessions[sid]["events"] += gateway.close_session(sid)
                    live.discard(sid)
                continue
            sid = str(rng.choice(still_feeding))
            state = sessions[sid]
            chunk = state["chunks"].pop(0)
            state["events"] += gateway.ingest(sid, chunk)
            state["fed"] += len(chunk)
        for sid, state in sessions.items():
            events = state["events"] + evicted.get(sid, [])
            assert_events_equal(
                standalone_events(
                    embedded_classifier, state["record"], fs, N_LEADS,
                    upto=state["fed"],
                ),
                events,
            )
        assert evicted  # at least one session actually got evicted
