"""Streaming analytics: operator correctness + gateway integration.

The operator classes are pinned against naive recomputations on the
same beat sequences (windowed RR statistics vs a numpy rescan, episode
machines vs hand-built rate traces), and the pipeline against its two
structural contracts: chunk-invariance (any partition of the beats
into update calls yields bit-identical state) and picklability (state
rides ``SessionExport`` through migration and crash recovery).

The gateway half asserts the serving-side plumbing: per-session
attachment and gateway-wide defaults, one batched fold per flush (not
per event), alerts via hook and pull, final summaries on close *and*
on eviction, the schema-pinned ``stats()["analytics"]`` rollup at the
single-process / sharded / socket tiers — plus the eviction-hook
exception-safety regression (a raising ``on_evict`` must not lose
events or starve a peer session's eviction).
"""

import copy
import json
import pickle
from dataclasses import dataclass

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import (
    AnalyticsPipeline,
    ArrhythmiaEpisodes,
    Episode,
    HRVSpectral,
    RRStats,
    RateEpisodes,
    ShardedGateway,
    StreamGateway,
    default_pipeline,
    empty_rollup,
    merge_rollups,
    serve_in_thread,
)
from repro.serving.net import GatewayClient

N_LEADS = 1
FS = 360.0


@dataclass(frozen=True)
class Beat:
    """Minimal stand-in for a StreamBeatEvent (peak + flag only)."""

    peak: int
    flagged: bool = False


def beats_from_rr(rr_seconds, fs=FS, flagged=None):
    """Beat sequence whose RR series is (the fs-quantized) ``rr_seconds``."""
    peaks = np.cumsum(
        [int(round(rr * fs)) for rr in (0.5, *rr_seconds)]
    )
    flags = flagged if flagged is not None else [False] * len(peaks)
    return [Beat(int(p), bool(f)) for p, f in zip(peaks, flags)]


def episode_set(episodes):
    """Order-free comparison key: each update call folds operator by
    operator, so episode *ordering* varies with batching while the
    episode set (and every summary) is batching-invariant."""
    return sorted(episodes, key=repr)


def fold(operators, events, fs=FS):
    """One-shot reference fold: a fresh pipeline over all events at once."""
    pipeline = AnalyticsPipeline(copy.deepcopy(list(operators)), fs)
    closed = pipeline.update(events)
    closed += pipeline.finalize()
    return pipeline, closed


class TestRRStats:
    def test_matches_naive_window_recompute(self):
        rng = np.random.default_rng(5)
        rr = rng.uniform(0.4, 1.2, size=200)
        events = beats_from_rr(rr)
        pipeline, _ = fold([RRStats(window=16)], events)
        got = pipeline.summary()["operators"]["rr"]

        # Recompute from the quantized peak diffs, exactly as consumed.
        peaks = np.array([e.peak for e in events])
        actual = np.diff(peaks) / FS
        window = actual[-16:]
        diffs = np.diff(actual)[-15:]
        assert got["n_beats"] == len(events)
        assert got["n_intervals"] == len(actual)
        assert got["mean_rr_ms"] == pytest.approx(window.mean() * 1e3)
        assert got["mean_hr_bpm"] == pytest.approx(60.0 / window.mean())
        assert got["sdnn_ms"] == pytest.approx(window.std() * 1e3)
        assert got["rmssd_ms"] == pytest.approx(
            np.sqrt(np.mean(diffs**2)) * 1e3
        )
        assert got["pnn50"] == pytest.approx(
            100.0 * np.mean(np.abs(diffs) > 0.05)
        )

    def test_empty_and_single_beat_summaries(self):
        op = RRStats()
        assert op.summary()["mean_rr_ms"] is None
        pipeline, _ = fold([RRStats()], [Beat(100)])
        got = pipeline.summary()["operators"]["rr"]
        assert got["n_beats"] == 1
        assert got["n_intervals"] == 0  # first beat has no RR
        assert got["mean_rr_ms"] is None

    def test_window_validation(self):
        with pytest.raises(ValueError):
            RRStats(window=1)


class TestHRVSpectral:
    def test_cadence_and_modulated_tachogram(self):
        # RR modulated at 0.25 Hz -> the HF band (0.15..0.4) dominates.
        t, rr = 0.0, []
        for _ in range(256):
            interval = 0.8 + 0.08 * np.sin(2 * np.pi * 0.25 * t)
            rr.append(interval)
            t += interval
        events = beats_from_rr(rr)
        op = HRVSpectral(every=32, window=256)
        pipeline, _ = fold([op], events)
        got = pipeline.summary()["operators"]["hrv"]
        assert got["n_intervals"] == len(rr)
        assert got["n_computes"] == len(rr) // 32
        metrics = got["metrics"]
        assert metrics["hf_ms2"] > metrics["lf_ms2"]
        assert metrics["hf_ms2"] > metrics["vlf_ms2"]
        assert metrics["total_ms2"] > 0
        assert metrics["lf_hf"] < 1.0

    def test_too_few_intervals_reports_none(self):
        events = beats_from_rr([0.8] * 6)
        pipeline, _ = fold([HRVSpectral(every=4, window=64)], events)
        assert pipeline.summary()["operators"]["hrv"]["metrics"] is None

    def test_validation(self):
        with pytest.raises(ValueError):
            HRVSpectral(resample_hz=0.0)
        with pytest.raises(ValueError):
            HRVSpectral(window=2)


class TestRateEpisodes:
    def test_tachy_episode_backdated_with_hysteresis(self):
        # 5 fast beats (120 bpm) between slow stretches; on_beats=3
        # opens an episode backdated to the run's first fast beat, and
        # a single in-band beat (97.5 bpm, inside the 95..100
        # hysteresis window) must NOT close it.
        rr = [0.8] * 4 + [0.5] * 3 + [60 / 97.5] + [0.5] * 2 + [0.8] * 4
        events = beats_from_rr(rr)
        op = RateEpisodes(on_beats=3, off_beats=3, hysteresis_bpm=5.0)
        pipeline, closed = fold([op], events)
        tachy = [e for e in closed if e.kind == "tachy"]
        assert len(tachy) == 1
        episode = tachy[0]
        # Backdated onset: starts at the first 120-bpm beat.
        assert episode.start_peak == events[5].peak
        assert episode.end_peak == events[10].peak
        assert episode.n_beats == 6  # 5 fast + 1 in-band beat
        assert episode.mean_hr_bpm == pytest.approx(
            np.mean([120.0] * 5 + [97.5]), rel=0.02
        )
        summary = pipeline.summary()["operators"]["rate"]
        assert summary["tachy_episodes"] == 1
        assert summary["brady_episodes"] == 0
        assert not summary["tachy_active"]

    def test_short_run_does_not_trigger(self):
        rr = [0.8] * 4 + [0.5] * 2 + [0.8] * 4  # only 2 fast beats
        _, closed = fold([RateEpisodes(on_beats=3)], beats_from_rr(rr))
        assert closed == []

    def test_brady_and_open_episode_closed_at_finish(self):
        rr = [0.8] * 3 + [1.5] * 5  # ends still bradycardic (40 bpm)
        pipeline, closed = fold([RateEpisodes()], beats_from_rr(rr))
        assert [e.kind for e in closed] == ["brady"]
        assert closed[0].mean_hr_bpm == pytest.approx(40.0, rel=0.02)
        assert pipeline.summary()["operators"]["rate"]["brady_episodes"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RateEpisodes(brady_bpm=120.0, tachy_bpm=100.0)
        with pytest.raises(ValueError):
            RateEpisodes(hysteresis_bpm=-1.0)


class TestArrhythmiaEpisodes:
    def test_flagged_runs_roll_into_episodes(self):
        flags = [0, 1, 1, 1, 0, 1, 0, 1, 1, 0, 0, 1, 1]  # runs: 3, 1, 2, 2
        events = beats_from_rr([0.8] * (len(flags) - 1), flagged=flags)
        pipeline, closed = fold([ArrhythmiaEpisodes(min_beats=2)], events)
        episodes = [e for e in closed if e.kind == "arrhythmia"]
        assert [e.n_beats for e in episodes] == [3, 2, 2]  # 1-run dropped
        assert episodes[0].start_peak == events[1].peak
        assert episodes[0].end_peak == events[3].peak
        assert episodes[-1].end_peak == events[-1].peak  # closed at finish
        summary = pipeline.summary()["operators"]["arrhythmia"]
        assert summary["n_flagged"] == sum(flags)
        assert summary["n_episodes"] == 3


class TestAnalyticsPipeline:
    def make_events(self, n=300, seed=3):
        rng = np.random.default_rng(seed)
        rr = rng.uniform(0.35, 1.4, size=n)
        flags = rng.random(n + 1) < 0.25
        return beats_from_rr(rr, flagged=flags)

    def test_chunk_invariance_over_random_partitions(self):
        events = self.make_events()
        reference, ref_closed = fold(default_pipeline(), events)
        rng = np.random.default_rng(11)
        for _ in range(5):
            pipeline = AnalyticsPipeline(default_pipeline(), FS)
            closed, i = [], 0
            while i < len(events):
                n = int(rng.integers(1, 40))
                closed += pipeline.update(events[i : i + n])
                closed += pipeline.update([])  # no-op, must not perturb
                i += n
            closed += pipeline.finalize()
            assert pipeline.summary() == reference.summary()
            assert episode_set(closed) == episode_set(ref_closed)

    def test_pickle_and_deepcopy_mid_stream(self):
        events = self.make_events(seed=4)
        reference, ref_closed = fold(default_pipeline(), events)
        pipeline = AnalyticsPipeline(default_pipeline(), FS)
        closed = pipeline.update(events[:137])
        for clone in (
            pickle.loads(pickle.dumps(pipeline)), copy.deepcopy(pipeline)
        ):
            clone_closed = list(closed) + clone.update(events[137:])
            clone_closed += clone.finalize()
            assert clone.summary() == reference.summary()
            assert episode_set(clone_closed) == episode_set(ref_closed)

    def test_counters_finalize_idempotent_and_json_summary(self):
        events = self.make_events(n=80, seed=6)
        pipeline = AnalyticsPipeline(default_pipeline(), FS)
        pipeline.update(events)
        assert pipeline.n_updates == 1
        assert pipeline.update([]) == []
        assert pipeline.n_updates == 1  # empty batches don't count
        pipeline.finalize()
        assert pipeline.finalize() == []  # idempotent
        summary = pipeline.summary()
        assert pipeline.n_beats == len(events)
        assert summary["n_beats"] == len(events)
        assert "n_updates" not in summary  # batching diagnostic only
        assert summary["n_episodes"] == sum(summary["by_kind"].values())
        json.dumps(summary)  # the wire/stats artifact must serialize

    def test_duplicate_operator_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AnalyticsPipeline([RRStats(), RRStats()], FS)


class TestRollups:
    def test_merge_sums_and_tolerates_missing(self):
        a = {
            "sessions": 2, "beats": 100, "episodes": 3, "alerts": 1,
            "by_kind": {"tachy": 2, "arrhythmia": 1},
        }
        b = {
            "sessions": 1, "beats": 50, "episodes": 1, "alerts": 0,
            "by_kind": {"brady": 1},
        }
        merged = merge_rollups([a, None, b, empty_rollup()])
        assert merged == {
            "sessions": 3, "beats": 150, "episodes": 4, "alerts": 1,
            "by_kind": {"tachy": 2, "arrhythmia": 1, "brady": 1},
        }
        assert merge_rollups([]) == empty_rollup()


@pytest.fixture(scope="module")
def records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=N_LEADS), seed=s).synthesize(
            15.0, class_mix={"N": 0.55, "V": 0.3, "L": 0.15}, name=f"an-{s}"
        )
        for s in (301, 302)
    ]


def reference_analytics(classifier, record, standalone_events, upto=None):
    """Standalone comparator: the full event list folded in one pass."""
    events = standalone_events(classifier, record, FS, N_LEADS, upto=upto)
    pipeline, closed = fold(default_pipeline(), events, fs=FS)
    return pipeline.summary(), closed


class TestGatewayAnalytics:
    def run(self, gateway, records, block_s=0.5, **open_kwargs):
        events = {}
        for i in range(len(records)):
            gateway.open_session(f"s{i}", **open_kwargs)
            events[f"s{i}"] = []
        block = int(block_s * FS)
        offsets = [0] * len(records)
        while any(o < r.n_samples for o, r in zip(offsets, records)):
            for i, record in enumerate(records):
                if offsets[i] < record.n_samples:
                    events[f"s{i}"] += gateway.ingest(
                        f"s{i}", record.signal[offsets[i] : offsets[i] + block]
                    )
                    offsets[i] += block
        for i in range(len(records)):
            events[f"s{i}"] += gateway.close_session(f"s{i}")
        return events

    def test_per_session_summary_matches_standalone(
        self, records, embedded_classifier, standalone_events
    ):
        alerts = []
        gateway = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS, max_batch=16,
            analytics=default_pipeline,
            on_alert=lambda sid, episode: alerts.append((sid, episode)),
        )
        self.run(gateway, records)
        summaries = gateway.take_summaries()
        pulled = gateway.take_alerts()
        assert pulled == alerts  # hook and pull surfaces agree
        for i, record in enumerate(records):
            expected_summary, expected_closed = reference_analytics(
                embedded_classifier, record, standalone_events
            )
            assert summaries[f"s{i}"] == expected_summary
            got = [ep for sid, ep in pulled if sid == f"s{i}"]
            assert episode_set(got) == episode_set(expected_closed)
        # Second take is empty: the stores are drained.
        assert gateway.take_summaries() == {}
        assert gateway.take_alerts() == []

    def test_per_session_spec_overrides_and_opt_out(
        self, records, embedded_classifier
    ):
        gateway = StreamGateway(embedded_classifier, FS, n_leads=N_LEADS)
        prototypes = [RRStats(window=8)]
        gateway.open_session("with", analytics=prototypes)
        gateway.open_session("without")
        signal = records[0].signal[: int(2 * FS)]
        gateway.ingest("with", signal)
        gateway.ingest("without", signal)
        gateway.close_session("with")
        gateway.close_session("without")
        summaries = gateway.take_summaries()
        assert set(summaries) == {"with"}
        assert list(summaries["with"]["operators"]) == ["rr"]
        assert prototypes[0].n_beats == 0  # caller's prototype untouched

    def test_empty_spec_opts_out_of_gateway_default(
        self, embedded_classifier
    ):
        gateway = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS,
            analytics=default_pipeline,
        )
        gateway.open_session("none", analytics=[])
        gateway.close_session("none")
        assert gateway.take_summaries() == {}

    def test_one_batched_fold_per_flush(
        self, records, embedded_classifier
    ):
        gateway = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS, max_batch=16,
            analytics=default_pipeline,
        )
        gateway.open_session("s")
        block = int(0.25 * FS)
        signal = records[0].signal
        for i in range(0, len(signal), block):
            gateway.ingest("s", signal[i : i + block])
        export = gateway.export_session("s")
        # The pipeline folded once per classifier flush, never per
        # event or per ingest: |updates| tracks flushes, not beats.
        assert 1 <= export.analytics.n_updates <= gateway.n_flushes
        assert export.analytics.n_beats > export.analytics.n_updates
        gateway.close_session("s")

    def test_stats_rollup_counts_live_and_closed(
        self, records, embedded_classifier, standalone_events
    ):
        gateway = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS,
            analytics=default_pipeline,
        )
        events = self.run(gateway, records)
        rollup = gateway.stats()["analytics"]
        assert rollup["sessions"] == len(records)
        assert rollup["beats"] == sum(len(ev) for ev in events.values())
        assert rollup["alerts"] == gateway.n_alerts
        assert rollup["episodes"] == sum(rollup["by_kind"].values())
        json.dumps(gateway.stats())  # STATS frame is JSON on the wire

    def test_eviction_produces_final_summary(
        self, records, embedded_classifier, standalone_events
    ):
        gateway = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS,
            analytics=default_pipeline,
        )
        gateway.open_session("stale", evict_after_ticks=2)
        gateway.open_session("busy")
        upto = int(3 * FS)
        gateway.ingest("stale", records[0].signal[:upto])
        for i in range(4):  # advance the clock; "stale" goes idle
            gateway.ingest(
                "busy", records[1].signal[i * 360 : (i + 1) * 360]
            )
        evicted = gateway.take_evicted()
        assert "stale" in evicted
        expected_summary, _ = reference_analytics(
            embedded_classifier, records[0], standalone_events, upto=upto
        )
        assert gateway.take_summaries()["stale"] == expected_summary
        assert gateway.stats()["analytics"]["sessions"] == 2

    def test_raising_evict_hook_keeps_events_and_finishes_scan(
        self, records, embedded_classifier
    ):
        """Regression: an ``on_evict`` hook that raises must not lose
        the evicted session's events, skip a peer session's eviction,
        or leave the gateway wedged — the error surfaces only after
        the scan completes."""
        calls = []

        def bad_hook(session_id, events):
            calls.append(session_id)
            raise RuntimeError(f"hook boom for {session_id}")

        gateway = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS, on_evict=bad_hook
        )
        # Thresholds staggered against last-active ticks so both
        # sessions go stale on the *same* scan: a crashing hook for
        # the first must not skip the second.
        gateway.open_session("stale-a", evict_after_ticks=3)
        gateway.open_session("stale-b", evict_after_ticks=2)
        gateway.open_session("busy")
        gateway.ingest("stale-a", records[0].signal[: int(2 * FS)])
        gateway.ingest("stale-b", records[0].signal[: int(2 * FS)])
        with pytest.raises(RuntimeError, match="hook boom for stale-"):
            for i in range(4):
                gateway.ingest(
                    "busy", records[1].signal[i * 360 : (i + 1) * 360]
                )
        # Both stale sessions were evicted (the first hook error did
        # not starve the second), both hooks ran, and both final event
        # sequences are in the take_evicted() store.
        assert sorted(calls) == ["stale-a", "stale-b"]
        evicted = gateway.take_evicted()
        assert sorted(evicted) == ["stale-a", "stale-b"]
        assert all(len(events) > 0 for events in evicted.values())
        assert gateway.n_evicted == 2
        # The gateway is still fully functional afterwards.
        gateway.ingest("busy", records[1].signal[: 360])
        gateway.close_session("busy")


class TestShardedAnalytics:
    @pytest.mark.parametrize("worker_mode", ["inline", "process"])
    def test_rollup_and_summaries_across_workers(
        self, worker_mode, records, embedded_classifier, standalone_events
    ):
        alerts = []
        with ShardedGateway(
            embedded_classifier, FS, workers=2, worker_mode=worker_mode,
            n_leads=N_LEADS, max_batch=16, analytics=default_pipeline,
            on_alert=lambda sid, episode: alerts.append((sid, episode)),
        ) as gateway:
            block = int(0.5 * FS)
            events = {}
            for i, record in enumerate(records):
                gateway.open_session(f"s{i}")
                events[f"s{i}"] = []
                for j in range(0, record.n_samples, block):
                    events[f"s{i}"] += gateway.ingest(
                        f"s{i}", record.signal[j : j + block]
                    )
            for i in range(len(records)):
                events[f"s{i}"] += gateway.close_session(f"s{i}")
            summaries = gateway.take_summaries()
            pulled = gateway.take_alerts()
            rollup = gateway.stats()["analytics"]
        for i, record in enumerate(records):
            expected_summary, expected_closed = reference_analytics(
                embedded_classifier, record, standalone_events
            )
            assert summaries[f"s{i}"] == expected_summary
            got = [ep for sid, ep in pulled if sid == f"s{i}"]
            assert episode_set(got) == episode_set(expected_closed)
        assert sorted(pulled, key=repr) == sorted(alerts, key=repr)
        assert rollup["sessions"] == len(records)
        assert rollup["beats"] == sum(len(ev) for ev in events.values())

    def test_per_session_spec_rides_the_pipe(
        self, records, embedded_classifier
    ):
        with ShardedGateway(
            embedded_classifier, FS, workers=2, worker_mode="process",
            n_leads=N_LEADS,
        ) as gateway:
            gateway.open_session("s", analytics=[RRStats(window=8)])
            gateway.ingest("s", records[0].signal[: int(2 * FS)])
            gateway.close_session("s")
            summaries = gateway.take_summaries()
        assert list(summaries["s"]["operators"]) == ["rr"]
        assert summaries["s"]["operators"]["rr"]["window"] == 8


class TestSocketAnalytics:
    def test_stats_rollup_crosses_the_wire(
        self, records, embedded_classifier
    ):
        gateway = StreamGateway(
            embedded_classifier, FS, n_leads=N_LEADS,
            analytics=default_pipeline,
        )
        handle = serve_in_thread(gateway)
        try:
            client = GatewayClient(handle.host, handle.port).connect()
            try:
                client.open_session("s")
                events = client.ingest("s", records[0].signal[: int(3 * FS)])
                events += client.close_session("s")
                rollup = client.stats()["analytics"]
            finally:
                client.close()
        finally:
            handle.stop()
        assert rollup["sessions"] == 1
        assert rollup["beats"] == len(events)
