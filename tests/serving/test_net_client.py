"""Client SDK discipline tests: retry, backoff, timeout, error parking.

These tests never open a real socket.  A :class:`FakeClock` replaces
``sleep``/``monotonic`` so backoff schedules and timeouts are asserted
exactly, and a :class:`FakePeer` implements the server side of the
protocol in-process behind a scripted :class:`FakeSocket`, so
connection failures and withheld replies are deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.net import protocol as wire
from repro.serving.net.client import (
    ClientTimeout,
    ConnectError,
    GatewayClient,
    RemoteError,
)


class FakeClock:
    """Deterministic monotonic clock; ``sleep`` records and advances."""

    def __init__(self):
        self.now = 0.0
        self.sleeps: list[float] = []

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def monotonic(self) -> float:
        return self.now


class FakePeer:
    """In-process server side of the protocol, with scriptable quirks.

    ``mute`` suppresses replies (for timeout tests); ``inject`` queues
    raw payloads the socket will deliver before any scripted reply.
    """

    def __init__(self, mute_ops=(), auto_error=None):
        self.decoder = wire.FrameDecoder()
        self.out = bytearray()
        self.received: list = []
        self.mute_ops = set(mute_ops)
        self.auto_error = auto_error
        self.seq_seen: dict[str, int] = {}

    def send(self, payload: bytes) -> None:
        self.out.extend(wire.pack_frame(payload))

    def feed(self, data: bytes) -> None:
        for payload in self.decoder.feed(data):
            self.handle(wire.decode(payload))

    def handle(self, message) -> None:
        self.received.append(message)
        if type(message).__name__.lower() in self.mute_ops:
            return
        if isinstance(message, wire.Hello):
            self.send(wire.encode_hello_ok(wire.DEFAULT_MAX_FRAME))
        elif isinstance(message, wire.Open):
            self.send(wire.encode_open_ok(message.session_id))
        elif isinstance(message, wire.Ingest):
            self.seq_seen[message.session_id] = message.seq + 1
            if self.auto_error is not None:
                self.send(
                    wire.encode_error(
                        message.session_id, self.auto_error, sync=False
                    )
                )
        elif isinstance(message, wire.Poll):
            self.send(
                wire.encode_events(
                    message.session_id,
                    self.seq_seen.get(message.session_id, 0),
                    message.ack_events,
                    [],
                    flags=wire.FLAG_SYNC,
                )
            )
        elif isinstance(message, wire.Close):
            self.send(
                wire.encode_events(
                    message.session_id,
                    self.seq_seen.get(message.session_id, 0),
                    message.ack_events,
                    [],
                    flags=wire.FLAG_FINAL,
                )
            )


class FakeSocket:
    """A scripted transport fronting a :class:`FakePeer`."""

    def __init__(self, peer: FakePeer, clock: FakeClock):
        self.peer = peer
        self.clock = clock
        self.closed = False

    def sendall(self, data: bytes) -> None:
        if self.closed:
            raise OSError("send on closed socket")
        self.peer.feed(data)

    def recv(self, n: int) -> bytes:
        if self.closed:
            raise OSError("recv on closed socket")
        out = bytes(self.peer.out[:n])
        del self.peer.out[:n]
        return out

    def wait_readable(self, timeout: float) -> bool:
        if self.peer.out:
            return True
        # Nothing will ever arrive without another send: burn the wait.
        self.clock.now += timeout
        return False

    def close(self) -> None:
        self.closed = True


def make_client(clock, connect_factory, **kwargs) -> GatewayClient:
    kwargs.setdefault("backoff_base", 0.1)
    kwargs.setdefault("backoff_max", 1.0)
    kwargs.setdefault("max_retries", 3)
    kwargs.setdefault("timeout", 2.0)
    return GatewayClient(
        "fake-host",
        1,
        sleep=clock.sleep,
        monotonic=clock.monotonic,
        connect_factory=connect_factory,
        **kwargs,
    )


def scripted_factory(clock, peer, failures=0):
    """A connect factory failing ``failures`` times before succeeding."""
    attempts = {"n": 0}

    def factory(address, timeout):
        attempts["n"] += 1
        if attempts["n"] <= failures:
            raise ConnectionRefusedError("scripted refusal")
        return FakeSocket(peer, clock)

    factory.attempts = attempts
    return factory


class TestConnectRetryBackoff:
    def test_exponential_backoff_schedule(self):
        clock = FakeClock()
        factory = scripted_factory(clock, FakePeer(), failures=3)
        client = make_client(clock, factory, backoff_base=0.1, backoff_max=10.0)
        client.connect()
        # Three refusals -> three sleeps doubling from backoff_base.
        assert clock.sleeps == pytest.approx([0.1, 0.2, 0.4])
        assert factory.attempts["n"] == 4
        assert client.connected and client.n_connects == 1

    def test_backoff_is_capped(self):
        clock = FakeClock()
        factory = scripted_factory(clock, FakePeer(), failures=3)
        client = make_client(clock, factory, backoff_base=0.4, backoff_max=0.5)
        client.connect()
        assert clock.sleeps == pytest.approx([0.4, 0.5, 0.5])

    def test_retries_exhausted_raises_connect_error(self):
        clock = FakeClock()
        factory = scripted_factory(clock, FakePeer(), failures=99)
        client = make_client(clock, factory, max_retries=2)
        with pytest.raises(ConnectError, match="3 attempts"):
            client.connect()
        # One initial try + max_retries retries, a sleep before each retry.
        assert factory.attempts["n"] == 3
        assert len(clock.sleeps) == 2
        assert not client.connected

    def test_connect_is_idempotent(self):
        clock = FakeClock()
        factory = scripted_factory(clock, FakePeer())
        client = make_client(clock, factory)
        client.connect()
        client.connect()
        assert factory.attempts["n"] == 1


class TestRetryBudget:
    def test_budget_caps_total_connect_wall_time(self):
        clock = FakeClock()
        factory = scripted_factory(clock, FakePeer(), failures=99)
        client = make_client(
            clock,
            factory,
            max_retries=50,
            backoff_base=1.0,
            backoff_max=10.0,
            retry_budget=2.5,
        )
        with pytest.raises(ConnectError, match="retry budget"):
            client.connect()
        # Per-attempt retries would have burned ~50 sleeps; the budget
        # bounds the whole operation's wall clock instead.
        assert clock.now <= 2.5 + 1e-9
        assert sum(clock.sleeps) <= 2.5 + 1e-9
        assert factory.attempts["n"] < 50

    def test_budget_truncates_the_final_backoff_sleep(self):
        clock = FakeClock()
        factory = scripted_factory(clock, FakePeer(), failures=99)
        client = make_client(
            clock,
            factory,
            max_retries=10,
            backoff_base=0.1,
            backoff_max=1.0,
            retry_budget=0.15,
        )
        with pytest.raises(ConnectError, match="retry budget"):
            client.connect()
        # First backoff runs in full (0.1), the second is clipped to the
        # 0.05 s of budget remaining, then the deadline trips.
        assert clock.sleeps == pytest.approx([0.1, 0.05])

    def test_budget_none_preserves_full_backoff_schedule(self):
        clock = FakeClock()
        factory = scripted_factory(clock, FakePeer(), failures=3)
        client = make_client(clock, factory, backoff_base=0.1, backoff_max=10.0)
        assert client.retry_budget is None
        client.connect()
        assert clock.sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_budget_rearmed_per_operation(self):
        clock = FakeClock()
        peer = FakePeer()
        factory = scripted_factory(clock, peer, failures=2)
        client = make_client(
            clock,
            factory,
            max_retries=5,
            backoff_base=0.1,
            backoff_max=1.0,
            retry_budget=1.0,
        )
        client.connect()  # two refusals, well inside budget
        # A long pause between operations must not count against the
        # next one: the deadline re-arms at every public entry point.
        clock.now += 100.0
        client.open_session("s0")
        out = client.close_session("s0")
        assert out == []

    def test_exhausted_budget_abandons_op_retries(self):
        clock = FakeClock()
        client = make_client(
            clock, scripted_factory(clock, FakePeer()), retry_budget=1.0
        )
        client._arm_budget()
        attempts = client._op_attempts()
        assert next(attempts) == 0
        clock.now += 2.0
        with pytest.raises(ConnectError, match="retry budget"):
            next(attempts)


class TestTimeouts:
    def test_open_times_out_when_server_is_mute(self):
        clock = FakeClock()
        peer = FakePeer(mute_ops={"open"})
        client = make_client(clock, scripted_factory(clock, peer), timeout=1.5)
        client.connect()
        start = clock.now
        with pytest.raises(ClientTimeout, match="open_ok"):
            client.open_session("s")
        assert clock.now - start >= 1.5

    def test_poll_times_out_when_sync_reply_withheld(self):
        clock = FakeClock()
        peer = FakePeer(mute_ops={"poll"})
        client = make_client(clock, scripted_factory(clock, peer), timeout=0.7)
        client.connect()
        client.open_session("s")
        with pytest.raises(ClientTimeout, match="sync"):
            client.poll("s")

    def test_timeout_is_not_charged_to_other_ops(self):
        clock = FakeClock()
        peer = FakePeer()
        client = make_client(clock, scripted_factory(clock, peer), timeout=0.7)
        client.connect()
        client.open_session("s")
        assert client.poll("s") == []  # replies promptly, no timeout


class TestErrorDiscipline:
    def test_sync_error_raises_remote_error(self):
        clock = FakeClock()
        peer = FakePeer()
        original = peer.handle

        def handle(message):
            if isinstance(message, wire.Open):
                peer.send(
                    wire.encode_error(
                        message.session_id, "already open elsewhere", sync=True
                    )
                )
                return
            original(message)

        peer.handle = handle
        client = make_client(clock, scripted_factory(clock, peer))
        client.connect()
        with pytest.raises(RemoteError, match="already open"):
            client.open_session("s")
        assert "s" not in client._sessions

    def test_async_ingest_error_parks_until_next_call(self):
        clock = FakeClock()
        peer = FakePeer(auto_error="classifier exploded")
        client = make_client(clock, scripted_factory(clock, peer))
        client.connect()
        client.open_session("s")
        # The erroring ingest itself does not raise (pipelined) ...
        client.ingest("s", np.zeros(16))
        # ... the session's next call does.
        with pytest.raises(RemoteError, match="classifier exploded"):
            client.poll("s")


class TestPipelining:
    def test_window_full_forces_one_poll_barrier(self):
        clock = FakeClock()
        peer = FakePeer()
        client = make_client(clock, scripted_factory(clock, peer), window=3)
        client.connect()
        client.open_session("s")
        for _ in range(3):
            client.ingest("s", np.zeros(8))
        polls_before = sum(isinstance(m, wire.Poll) for m in peer.received)
        client.ingest("s", np.zeros(8))  # fourth: window was full
        polls_after = sum(isinstance(m, wire.Poll) for m in peer.received)
        assert polls_before == 0 and polls_after == 1
        # The sync barrier emptied the replay buffer before the send.
        assert len(client._sessions["s"].pending) == 1

    def test_acks_trim_the_replay_buffer(self):
        clock = FakeClock()
        peer = FakePeer()
        client = make_client(clock, scripted_factory(clock, peer), window=8)
        client.connect()
        client.open_session("s")
        for _ in range(4):
            client.ingest("s", np.zeros(8))
        assert len(client._sessions["s"].pending) == 4
        client.poll("s")  # SYNC events frame acks everything sent
        assert len(client._sessions["s"].pending) == 0

    def test_zero_length_chunk_is_legal(self):
        clock = FakeClock()
        peer = FakePeer()
        client = make_client(clock, scripted_factory(clock, peer))
        client.connect()
        client.open_session("s")
        assert client.ingest("s", np.empty(0)) == []
        assert client.close_session("s") == []

    def test_ingest_unknown_session_raises_locally(self):
        clock = FakeClock()
        client = make_client(clock, scripted_factory(clock, FakePeer()))
        client.connect()
        with pytest.raises(KeyError, match="ghost"):
            client.ingest("ghost", np.zeros(4))


class TestLifecycle:
    def test_context_manager_connects_and_closes(self):
        clock = FakeClock()
        factory = scripted_factory(clock, FakePeer())
        with make_client(clock, factory) as client:
            assert client.connected
        assert not client.connected

    def test_shutdown_aliases_close(self):
        clock = FakeClock()
        client = make_client(clock, scripted_factory(clock, FakePeer()))
        client.connect()
        client.shutdown()
        assert not client.connected

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            GatewayClient("h", 1, window=0)

    def test_duplicate_open_rejected_locally(self):
        clock = FakeClock()
        client = make_client(clock, scripted_factory(clock, FakePeer()))
        client.connect()
        client.open_session("s")
        with pytest.raises(ValueError, match="already open"):
            client.open_session("s")


class TestDoubleTransportFailure:
    """A second connection death *during* resume must surface as the
    public ``ConnectError``, never the private retry signal."""

    @staticmethod
    def _double_kill_client():
        clock = FakeClock()
        peer1 = FakePeer()

        class ResumeKilledPeer(FakePeer):
            def handle(self, message):
                if isinstance(message, wire.Resume):
                    raise OSError("connection reset mid-resume")
                super().handle(message)

        sockets = []

        def factory(address, timeout):
            peer = peer1 if not sockets else ResumeKilledPeer()
            sockets.append(FakeSocket(peer, clock))
            return sockets[-1]

        client = make_client(clock, factory)
        client.connect()
        client.open_session("s")
        client.ingest("s", np.zeros(8))
        sockets[0].closed = True  # first transport death
        return client

    def test_ingest_surfaces_public_connect_error(self):
        client = self._double_kill_client()
        # Reconnect succeeds (HELLO/HELLO_OK on socket 2), then the
        # RESUME send dies: the boundary converts to ConnectError.
        with pytest.raises(ConnectError, match="lost again while resuming"):
            client.ingest("s", np.ones(8))
        assert not client.connected

    def test_poll_surfaces_public_connect_error(self):
        client = self._double_kill_client()
        with pytest.raises(ConnectError, match="lost again while resuming"):
            client.poll("s")
        assert not client.connected


class TestDiscardSession:
    def test_discard_drops_local_state_without_wire_traffic(self):
        clock = FakeClock()
        peer = FakePeer()
        client = make_client(clock, scripted_factory(clock, peer))
        client.connect()
        client.open_session("s")
        client.ingest("s", np.zeros(4))
        frames_before = len(peer.received)
        client.discard_session("s")
        assert len(peer.received) == frames_before  # nothing sent
        with pytest.raises(KeyError, match="no open session"):
            client.ingest("s", np.zeros(4))
        client.discard_session("unknown")  # unknown ids are ignored
