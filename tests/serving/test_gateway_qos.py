"""Per-session QoS and backpressure: latency budgets, eviction, inboxes.

The gateway's global flush policy (``max_batch`` / ``max_latency_ticks``)
gained three per-session QoS levers in the sharded-gateway PR:

* per-session latency budgets (``open_session(max_latency_ticks=n)``)
  that flush the cross-session batch earlier than the global bound;
* idle-session eviction (``evict_after_ticks``) that force-closes a
  slow session and emits its complete, well-formed final event set;
* bounded per-session inboxes (:class:`repro.serving.SessionInbox`)
  whose documented drop/block overflow policies shed or absorb load
  deterministically — no silent loss, no deadlock.
"""

import threading
import time

import numpy as np
import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.serving import INBOX_POLICIES, SessionInbox, ShardedGateway, StreamGateway

FS_BLOCK_S = 0.4


@pytest.fixture(scope="module")
def record():
    return RecordSynthesizer(SynthesisConfig(n_leads=1), seed=81).synthesize(
        18.0, class_mix={"N": 0.6, "V": 0.3, "L": 0.1}, name="qos"
    )


@pytest.fixture(scope="module")
def block(record):
    return int(FS_BLOCK_S * record.fs)


class TestPerSessionLatencyBudget:
    def test_tight_budget_flushes_earlier_than_global_policy(
        self, record, block, embedded_classifier
    ):
        """With the global policy effectively off (huge bounds), a
        session's own budget still bounds how long its beats wait."""
        gateway = StreamGateway(
            embedded_classifier, record.fs,
            max_batch=10_000, max_latency_ticks=10_000,
        )
        gateway.open_session("fast", max_latency_ticks=2)
        waited = 0
        for i in range(0, record.n_samples, block):
            gateway.ingest("fast", record.signal[i : i + block])
            waited = waited + 1 if gateway.n_queued else 0
            assert waited <= 2
        gateway.close_session("fast")

    def test_without_budget_the_global_policy_stalls_the_quiet_fleet(
        self, record, block, embedded_classifier
    ):
        """Control: same huge global bounds, no per-session budget —
        beats do wait longer than the tight budget would allow."""
        gateway = StreamGateway(
            embedded_classifier, record.fs,
            max_batch=10_000, max_latency_ticks=10_000,
        )
        gateway.open_session("lax")
        waited = max_waited = 0
        for i in range(0, record.n_samples, block):
            gateway.ingest("lax", record.signal[i : i + block])
            waited = waited + 1 if gateway.n_queued else 0
            max_waited = max(max_waited, waited)
        gateway.close_session("lax")
        assert max_waited > 2

    def test_budget_does_not_change_event_content(
        self, record, block, embedded_classifier, assert_events_equal, standalone_events
    ):
        """A tight budget changes *when* beats flush, never what they are."""
        gateway = StreamGateway(embedded_classifier, record.fs)
        gateway.open_session("s", max_latency_ticks=1)
        events = []
        for i in range(0, record.n_samples, block):
            events += gateway.ingest("s", record.signal[i : i + block])
        events += gateway.close_session("s")
        assert_events_equal(
            standalone_events(embedded_classifier, record, record.fs, 1), events
        )

    def test_budget_travels_with_migration(self, record, embedded_classifier):
        source = StreamGateway(embedded_classifier, record.fs)
        target = StreamGateway(embedded_classifier, record.fs)
        source.open_session("s", max_latency_ticks=3, evict_after_ticks=9)
        export = source.release_session("s")
        assert export.max_latency_ticks == 3
        assert export.evict_after_ticks == 9
        target.import_session(export)
        session = target._sessions["s"]
        assert session.latency_budget == 3 and session.evict_after == 9


class TestEviction:
    def test_eviction_fires_exactly_at_threshold(
        self, record, block, embedded_classifier
    ):
        """Idle for threshold - 1 ticks: still open.  One more: evicted."""
        evicted = {}
        gateway = StreamGateway(
            embedded_classifier, record.fs,
            on_evict=lambda sid, events: evicted.update({sid: events}),
        )
        gateway.open_session("active")
        gateway.open_session("idle", evict_after_ticks=3)
        gateway.ingest("idle", record.signal[:block])  # tick 1
        gateway.ingest("active", record.signal[:block])  # tick 2: idle for 1
        gateway.ingest("active", record.signal[block : 2 * block])  # tick 3: 2
        assert "idle" not in evicted and gateway.n_sessions == 2
        gateway.ingest("active", record.signal[2 * block : 3 * block])  # tick 4: 3
        assert "idle" in evicted
        assert gateway.n_sessions == 1 and gateway.n_evicted == 1

    def test_evicted_events_are_well_formed_and_complete(
        self, record, block, embedded_classifier, assert_events_equal, standalone_events
    ):
        """The eviction event set equals closing the session by hand:
        bit-exact with a standalone node fed the ingested prefix."""
        gateway = StreamGateway(embedded_classifier, record.fs, evict_after_ticks=2)
        gateway.open_session("active")
        gateway.open_session("slow")
        fed = 15 * block
        early = gateway.ingest("slow", record.signal[:fed])
        offset = 0
        while gateway.n_sessions == 2:
            gateway.ingest("active", record.signal[offset : offset + block])
            offset += block
        final = gateway.take_evicted()
        assert list(final) == ["slow"]
        assert_events_equal(
            standalone_events(embedded_classifier, record, record.fs, 1, upto=fed),
            early + final["slow"],
        )
        assert any(e.flagged for e in early + final["slow"])

    def test_evicted_session_is_gone(self, record, block, embedded_classifier):
        gateway = StreamGateway(embedded_classifier, record.fs, evict_after_ticks=2)
        gateway.open_session("a")
        gateway.open_session("b")
        gateway.ingest("a", record.signal[:block])
        gateway.ingest("b", record.signal[:block])
        gateway.ingest("a", record.signal[block : 2 * block])
        gateway.ingest("a", record.signal[2 * block : 3 * block])  # b idle 2: evicted
        assert gateway.session_ids() == ["a"]
        with pytest.raises(KeyError, match="no open session"):
            gateway.ingest("b", record.signal[:10])
        with pytest.raises(KeyError, match="no open session"):
            gateway.close_session("b")

    def test_per_session_threshold_overrides_gateway_default(
        self, record, block, embedded_classifier
    ):
        gateway = StreamGateway(embedded_classifier, record.fs, evict_after_ticks=2)
        gateway.open_session("default")
        gateway.open_session("patient", evict_after_ticks=50)
        gateway.ingest("default", record.signal[:block])
        gateway.ingest("patient", record.signal[:block])
        for i in range(4):
            gateway.ingest("patient", record.signal[(i + 1) * block : (i + 2) * block])
        assert gateway.session_ids() == ["patient"]  # default-threshold one evicted

    def test_session_id_is_reusable_after_eviction(
        self, record, block, embedded_classifier, assert_events_equal,
        standalone_events,
    ):
        """Regression: the worker must forget an evicted id when the id
        is reopened — otherwise the new session's ingests are silently
        swallowed by the eviction guard."""
        with ShardedGateway(
            embedded_classifier, record.fs, workers=2
        ) as gateway:
            gateway.open_session("active", worker=0)
            gateway.open_session("s", worker=0, evict_after_ticks=2)
            gateway.ingest("s", record.signal[:block])
            offset = 0
            while "s" in gateway.session_ids():
                gateway.ingest("active", record.signal[offset : offset + block])
                offset += block
                gateway.poll("active")
            gateway.take_evicted()
            # Reuse the id on the same worker: must serve normally.
            gateway.open_session("s", worker=0)
            events = []
            for i in range(0, record.n_samples, block):
                events += gateway.ingest("s", record.signal[i : i + block])
            events += gateway.close_session("s")
            gateway.close_session("active")
        assert_events_equal(
            standalone_events(embedded_classifier, record, record.fs, 1), events
        )

    def test_sharded_eviction_reaches_the_parent(
        self, record, block, embedded_classifier, assert_events_equal, standalone_events
    ):
        """Worker-side evictions ride back on responses: the parent's
        hook fires and the final set matches a standalone node."""
        evicted = {}
        with ShardedGateway(
            embedded_classifier, record.fs, workers=2,
            on_evict=lambda sid, events: evicted.update({sid: events}),
        ) as gateway:
            # Same-worker pair so the active session ticks the idle one.
            gateway.open_session("active", worker=0)
            gateway.open_session("idle", worker=0, evict_after_ticks=2)
            fed = 4 * block
            early = gateway.ingest("idle", record.signal[:fed])
            offset = 0
            for _ in range(4):
                early += []
                gateway.ingest("active", record.signal[offset : offset + block])
                offset += block
            gateway.poll("active")  # drains the eviction notice
            assert "idle" in evicted
            assert gateway.n_sessions == 1
            with pytest.raises(KeyError, match="no open session"):
                gateway.ingest("idle", record.signal[:10])
            gateway.close_session("active")
        assert_events_equal(
            standalone_events(embedded_classifier, record, record.fs, 1, upto=fed),
            early + evicted["idle"],
        )


class TestSessionInbox:
    """The documented drop/block overflow policies, deterministically."""

    def test_drop_mode_sheds_loudly_and_keeps_the_rest(self):
        """Beyond capacity: rejected, counted — the accepted items are
        intact and in order (no silent loss, nothing blocks)."""
        inbox = SessionInbox(capacity=3, policy="drop")
        accepted = [inbox.put(i) for i in range(8)]
        assert accepted == [True] * 3 + [False] * 5
        assert inbox.n_dropped == 5 and inbox.n_accepted == 3
        assert [inbox.take() for _ in range(3)] == [0, 1, 2]
        assert inbox.put(99) is True  # space again after consumption
        assert inbox.high_water == 3

    def test_block_mode_never_loses_under_a_stalled_consumer(self):
        """A consumer that stalls then drains: every put eventually
        lands, order preserved, occupancy never exceeds capacity."""
        inbox = SessionInbox(capacity=2, policy="block")
        taken = []

        def consumer():
            time.sleep(0.05)  # stall first
            for _ in range(6):
                while len(inbox) == 0:
                    time.sleep(0.001)
                taken.append(inbox.take())

        thread = threading.Thread(target=consumer)
        thread.start()
        for i in range(6):
            assert inbox.put(i) is True
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert taken == list(range(6))
        assert inbox.n_dropped == 0
        assert inbox.high_water <= 2

    def test_block_mode_wait_hook_drives_the_consumer(self):
        """Single-threaded block mode: the wait hook consumes (how the
        sharded gateway drains worker responses) — no deadlock."""
        inbox = SessionInbox(capacity=1, policy="block")
        consumed = []
        inbox.put("a")
        assert inbox.put("b", wait=lambda: consumed.append(inbox.take())) is True
        assert consumed == ["a"] and len(inbox) == 1

    def test_close_unblocks_a_waiting_producer(self):
        """A session ending (e.g. evicted) under a blocked producer
        must not leave it waiting for space that never frees up."""
        inbox = SessionInbox(capacity=1, policy="block")
        inbox.put("a")
        outcome = []

        def producer():
            outcome.append(inbox.put("b"))

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.02)  # let the producer reach the wait
        inbox.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert outcome == [False]  # rejected, not accepted-after-death
        assert inbox.closed and inbox.put("c") is False
        assert inbox.n_dropped == 0  # closure is not load shedding

    def test_validation_names_allowed_values(self):
        with pytest.raises(ValueError, match=r"inbox_capacity must be >= 1"):
            SessionInbox(capacity=0)
        with pytest.raises(ValueError) as excinfo:
            SessionInbox(capacity=1, policy="spill")
        message = str(excinfo.value)
        assert "spill" in message
        for name in INBOX_POLICIES:
            assert name in message


class TestShardedBackpressure:
    def test_block_mode_is_lossless_and_bit_exact(
        self, record, block, embedded_classifier, assert_events_equal, standalone_events
    ):
        """capacity=1 block mode fully serializes producer and worker:
        nothing dropped, nothing deadlocked, events bit-exact."""
        with ShardedGateway(
            embedded_classifier, record.fs, workers=2,
            inbox_capacity=1, inbox_policy="block",
        ) as gateway:
            gateway.open_session("p")
            events = []
            for i in range(0, record.n_samples, block):
                events += gateway.ingest("p", record.signal[i : i + block])
            inbox = gateway._inboxes["p"]
            assert inbox.high_water <= 1 and inbox.n_dropped == 0
            assert gateway.dropped_chunks() == 0
            events += gateway.close_session("p")
        assert_events_equal(
            standalone_events(embedded_classifier, record, record.fs, 1), events
        )

    def test_pipelined_ingest_error_blames_its_own_session(
        self, record, block, embedded_classifier
    ):
        """Regression: a worker-side ingest error (malformed chunk)
        arrives asynchronously; it must be raised by the erroring
        session's next call — not out of an unrelated session's call,
        and without desyncing the pipe protocol."""
        with ShardedGateway(
            embedded_classifier, record.fs, workers=2, n_leads=1
        ) as gateway:
            gateway.open_session("bad", worker=0)
            gateway.open_session("good", worker=1)
            gateway.ingest("bad", record.signal[:block].reshape(-1, 1).repeat(2, axis=1))
            # The unrelated session keeps working while the error is in
            # flight and after it has been parked.
            for i in range(3):
                gateway.ingest("good", record.signal[i * block : (i + 1) * block])
            gateway.poll("good")
            with pytest.raises(ValueError, match="blocks must be"):
                gateway.ingest("bad", record.signal[:block])
            # Protocol still in sync: the erroring session stays open
            # (the worker-side push rejected the chunk before mutating).
            assert gateway.ingest("bad", record.signal[:block]) == []
            gateway.close_session("bad")
            gateway.close_session("good")

    def test_drop_mode_counts_every_shed_chunk(
        self, record, block, embedded_classifier
    ):
        """Drop mode with an artificially saturated inbox: the chunk is
        rejected and audited, the session keeps serving — and the audit
        survives a rebalancing migration."""
        with ShardedGateway(
            embedded_classifier, record.fs, workers=2,
            inbox_capacity=1, inbox_policy="drop",
        ) as gateway:
            gateway.open_session("p", worker=0)
            # Saturate the accounting directly: the policy decision is
            # parent-side and deterministic given a full inbox.
            gateway._inboxes["p"].put(0)
            events = gateway.ingest("p", record.signal[:block])
            assert events == []
            assert gateway.dropped_chunks("p") == 1
            assert gateway.dropped_chunks() == 1
            gateway._inboxes["p"].take()  # free the slot; session still live
            for i in range(1, 6):
                gateway.ingest("p", record.signal[i * block : (i + 1) * block])
                gateway.poll("p")  # synchronize so no further chunk sheds
            gateway.migrate_session("p", 1)
            assert gateway.dropped_chunks("p") == 1  # audit not reset
            final = gateway.close_session("p")
        assert gateway.dropped_chunks("p") == 0  # session gone; audit per run
        assert isinstance(final, list)
