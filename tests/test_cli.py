"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.dest == "command"
        )
        commands = set(subparsers.choices)
        assert {
            "table1",
            "table2",
            "figure4",
            "figure5",
            "table3",
            "energy",
            "multilead",
            "noise",
            "alpha",
            "all",
            "train",
            "codegen",
            "simulate",
            "serve",
            "loadgen",
            "report",
        } <= commands

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_placement_validated_at_parse_time(self):
        """A typo'd placement fails before any training starts."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--placement", "least-load"])

    def test_serve_autoscale_bounds_checked_before_training(self, capsys):
        with pytest.raises(SystemExit, match="min-workers"):
            main(["serve", "--autoscale", "--min-workers", "3",
                  "--max-workers", "2"])
        with pytest.raises(SystemExit, match="target-depth"):
            main(["serve", "--autoscale", "--target-depth", "0"])

    def test_serve_placement_rejected_without_sharded_mode(self):
        """--placement on a single-process serve is a no-op; refuse it
        loudly instead of silently ignoring it."""
        with pytest.raises(SystemExit, match="placement"):
            main(["serve", "--placement", "round-robin"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "train1" in out and "paper" in out

    def test_figure4(self, capsys):
        assert main(["figure4"]) == 0
        out = capsys.readouterr().out
        assert "linear" in out and "triangular" in out

    def test_table3(self, capsys):
        assert (
            main(["table3", "--scale", "0.02", "--ga-pop", "4", "--ga-gen", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "RP-classifier" in out
        assert "Proposed system (3)" in out

    def test_energy(self, capsys):
        assert (
            main(["energy", "--scale", "0.02", "--ga-pop", "4", "--ga-gen", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "wireless saving" in out

    def test_alpha(self, capsys):
        assert (
            main(["alpha", "--scale", "0.02", "--ga-pop", "4", "--ga-gen", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "retuned NDR" in out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--scale",
                    "0.02",
                    "--ga-pop",
                    "4",
                    "--ga-gen",
                    "2",
                    "--duration",
                    "20",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "deadline misses" in out

    def test_serve(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "0.02",
                    "--ga-pop",
                    "4",
                    "--ga-gen",
                    "2",
                    "--sessions",
                    "3",
                    "--duration",
                    "15",
                    "--max-batch",
                    "16",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "events/s" in out and "batched" in out
        assert "session-0" in out and "session-2" in out

    def test_serve_multi_worker(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "0.02",
                    "--ga-pop",
                    "4",
                    "--ga-gen",
                    "2",
                    "--sessions",
                    "3",
                    "--duration",
                    "15",
                    "--max-batch",
                    "16",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 process workers" in out
        assert "events/s" in out and "batched" in out
        assert "session-0" in out and "session-2" in out

    def test_serve_profile(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "0.02",
                    "--ga-pop",
                    "4",
                    "--ga-gen",
                    "2",
                    "--sessions",
                    "2",
                    "--duration",
                    "10",
                    "--profile",
                    "--profile-top",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "--profile: top 5 functions" in out
        assert "cumulative" in out and "serve_round_robin" in out
        # Training happens outside the profiled window.
        assert "build_embedded_classifier" not in out

    def test_loadgen(self, capsys):
        assert (
            main(
                [
                    "loadgen",
                    "--scale",
                    "0.02",
                    "--ga-pop",
                    "4",
                    "--ga-gen",
                    "2",
                    "--sessions",
                    "2",
                    "--duration",
                    "10",
                    "--steps",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Ramping offered load" in out
        assert "sustained" in out
        assert "max sustained:" in out and "p99" in out

    def test_serve_autoscale(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "0.02",
                    "--ga-pop",
                    "4",
                    "--ga-gen",
                    "2",
                    "--sessions",
                    "4",
                    "--duration",
                    "15",
                    "--max-batch",
                    "16",
                    "--autoscale",
                    "--min-workers",
                    "1",
                    "--max-workers",
                    "3",
                    "--target-depth",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "elastic pool 1..3 workers" in out
        assert "autoscaler:" in out and "scale events" in out
        assert "events/s" in out and "session-3" in out


class TestTrainAndCodegen:
    def test_train_saves_both_models(self, tmp_path, capsys):
        prefix = str(tmp_path / "model")
        code = main(
            [
                "train",
                "--scale",
                "0.02",
                "--ga-pop",
                "4",
                "--ga-gen",
                "2",
                "--output",
                prefix,
            ]
        )
        assert code == 0
        assert (tmp_path / "model.pipeline.npz").exists()
        assert (tmp_path / "model.embedded.npz").exists()
        out = capsys.readouterr().out
        assert "float:" in out and "embedded:" in out

    def test_codegen_from_saved_model(self, tmp_path, capsys, embedded_classifier):
        from repro.io import save_embedded

        model_path = tmp_path / "m.embedded.npz"
        save_embedded(embedded_classifier, model_path)
        header_path = tmp_path / "classifier.h"
        code = main(["codegen", str(model_path), "--output", str(header_path)])
        assert code == 0
        text = header_path.read_text()
        assert "#ifndef REPRO_RP_CLASSIFIER_H" in text

    def test_codegen_stdout(self, tmp_path, capsys, embedded_classifier):
        from repro.io import save_embedded

        model_path = tmp_path / "m.embedded.npz"
        save_embedded(embedded_classifier, model_path)
        assert main(["codegen", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "rp_classifier_matrix" in out

    def test_report_command(self, tmp_path, capsys):
        out_dir = tmp_path / "rep"
        code = main(
            [
                "report",
                "--scale",
                "0.02",
                "--ga-pop",
                "4",
                "--ga-gen",
                "2",
                "--output-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        assert (out_dir / "report.md").exists()
        assert (out_dir / "figure5_gaussian.csv").exists()
