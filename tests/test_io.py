"""Tests for model serialization."""

import numpy as np
import pytest

from repro.io import (
    FORMAT_VERSION,
    load_embedded,
    load_pipeline,
    save_embedded,
    save_pipeline,
)


class TestPipelineRoundTrip:
    def test_parameters_identical(self, pipeline, tmp_path):
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        loaded = load_pipeline(path)
        np.testing.assert_array_equal(
            loaded.projection.matrix, pipeline.projection.matrix
        )
        np.testing.assert_allclose(loaded.nfc.centers, pipeline.nfc.centers)
        np.testing.assert_allclose(loaded.nfc.sigmas, pipeline.nfc.sigmas)
        assert loaded.alpha == pipeline.alpha
        assert loaded.nfc.shape == pipeline.nfc.shape

    def test_predictions_identical(self, pipeline, datasets, tmp_path):
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        loaded = load_pipeline(path)
        X = datasets.test.X[:100]
        np.testing.assert_array_equal(loaded.predict(X), pipeline.predict(X))

    def test_shape_preserved(self, pipeline, tmp_path):
        path = tmp_path / "model.npz"
        save_pipeline(pipeline.with_shape("linear"), path)
        assert load_pipeline(path).nfc.shape == "linear"


class TestEmbeddedRoundTrip:
    def test_tables_identical(self, embedded_classifier, tmp_path):
        path = tmp_path / "embedded.npz"
        save_embedded(embedded_classifier, path)
        loaded = load_embedded(path)
        np.testing.assert_array_equal(
            loaded.matrix.data, embedded_classifier.matrix.data
        )
        assert loaded.matrix.shape == embedded_classifier.matrix.shape
        np.testing.assert_array_equal(
            loaded.nfc.centers, embedded_classifier.nfc.centers
        )
        assert loaded.alpha_q16 == embedded_classifier.alpha_q16
        assert loaded.adc_gain == embedded_classifier.adc_gain

    def test_predictions_identical(self, embedded_classifier, embedded_datasets, tmp_path):
        _, _, test = embedded_datasets
        path = tmp_path / "embedded.npz"
        save_embedded(embedded_classifier, path)
        loaded = load_embedded(path)
        np.testing.assert_array_equal(
            loaded.predict(test.X[:200]), embedded_classifier.predict(test.X[:200])
        )


class TestSafety:
    def test_kind_mismatch(self, pipeline, tmp_path):
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        with pytest.raises(ValueError, match="expected 'embedded'"):
            load_embedded(path)

    def test_future_version_rejected(self, pipeline, tmp_path):
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        with np.load(path) as archive:
            payload = dict(archive)
        payload["version"] = np.array(FORMAT_VERSION + 1)
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="newer"):
            load_pipeline(path)
