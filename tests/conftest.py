"""Shared fixtures: small datasets and trained artifacts.

Training even a reduced GA takes a second or two, so the expensive
artifacts are session-scoped and shared by all test modules.  Tests
that need isolation build their own objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.genetic import GeneticConfig
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig
from repro.ecg.mitbih import BeatDatasets, make_datasets
from repro.experiments.datasets import decimate_labeled
from repro.fixedpoint.convert import EmbeddedClassifier, convert_pipeline, tune_embedded_alpha

#: Scale of the Table-I sets used throughout the tests.
TEST_SCALE = 0.03

#: Reduced GA so a full two-step training stays around a second.
TEST_GA = GeneticConfig(population_size=5, generations=3)


@pytest.fixture(scope="session")
def datasets() -> BeatDatasets:
    """Small Table-I-shaped datasets at 360 Hz."""
    return make_datasets(scale=TEST_SCALE, seed=11)


@pytest.fixture(scope="session")
def embedded_datasets(datasets):
    """The same beats decimated to the 90 Hz configuration."""
    return tuple(decimate_labeled(s) for s in (datasets.train1, datasets.train2, datasets.test))


@pytest.fixture(scope="session")
def training_config() -> TrainingConfig:
    """Reduced-budget training configuration shared by the suite."""
    return TrainingConfig(n_coefficients=8, genetic=TEST_GA, scg_iterations=60)


@pytest.fixture(scope="session")
def pipeline(datasets, training_config) -> RPClassifierPipeline:
    """A trained float pipeline (8 coefficients, 360 Hz)."""
    return RPClassifierPipeline.train(
        datasets.train1, datasets.train2, 8, seed=11, config=training_config
    )


@pytest.fixture(scope="session")
def embedded_pipeline(embedded_datasets, training_config) -> RPClassifierPipeline:
    """A trained float pipeline at the 90 Hz embedded configuration."""
    train1, train2, _ = embedded_datasets
    return RPClassifierPipeline.train(train1, train2, 8, seed=11, config=training_config)


@pytest.fixture(scope="session")
def embedded_classifier(embedded_pipeline, embedded_datasets) -> EmbeddedClassifier:
    """The quantized WBSN classifier, alpha tuned at 97% ARR."""
    _, _, test = embedded_datasets
    classifier = convert_pipeline(embedded_pipeline, shape="linear")
    return tune_embedded_alpha(classifier, test, 0.97)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
